#include "plasma/client.h"

#include <poll.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

#include "common/crc32.h"
#include "net/frame.h"
#include "net/socket.h"
#include "plasma/async_client.h"

namespace mdos::plasma {

// ---- ObjectBuffer ----------------------------------------------------------

Status ObjectBuffer::CheckAccess(uint64_t section_size, uint64_t offset,
                                 uint64_t size) const {
  if (!valid_) return Status::Invalid("buffer is not valid");
  if (offset + size < offset || offset + size > section_size) {
    return Status::Invalid("buffer access out of bounds");
  }
  return Status::OK();
}

Status ObjectBuffer::RawRead(uint64_t offset, void* dst,
                             uint64_t size) const {
  // Mapped buffers loop at most twice: a generation mismatch after the
  // first copy swaps in a pinned backing (FallbackToPinned clears gen_),
  // and the second copy reads stable bytes. The caller never sees torn
  // data — a failed fallback surfaces as an error, not as the copy.
  for (;;) {
    if (region_ != nullptr) {
      MDOS_RETURN_IF_ERROR(region_->Read(base_ + offset, dst, size));
    } else {
      std::memcpy(dst, raw_ + base_ + offset, size);
    }
    if (gen_ == nullptr || GenerationIntact()) return Status::OK();
    MDOS_RETURN_IF_ERROR(FallbackToPinned());
  }
}

Status ObjectBuffer::RawWrite(uint64_t offset, const void* src,
                              uint64_t size) {
  if (region_ != nullptr) {
    return region_->Write(base_ + offset, src, size);
  }
  std::memcpy(raw_ + base_ + offset, src, size);
  return Status::OK();
}

Status ObjectBuffer::ReadData(uint64_t offset, void* dst,
                              uint64_t size) const {
  MDOS_RETURN_IF_ERROR(CheckAccess(data_size_, offset, size));
  return RawRead(offset, dst, size);
}

Status ObjectBuffer::WriteData(uint64_t offset, const void* src,
                               uint64_t size) {
  MDOS_RETURN_IF_ERROR(CheckAccess(data_size_, offset, size));
  if (!writable_) {
    return Status::Sealed("buffer is read-only (object is sealed)");
  }
  return RawWrite(offset, src, size);
}

Result<uint32_t> ObjectBuffer::ChecksumData(uint64_t chunk) const {
  if (!valid_) return Status::Invalid("buffer is not valid");
  // Same retry shape as RawRead. The whole streaming checksum restarts
  // after a fallback: chunks copied before and after a transition must
  // never be mixed into one CRC.
  for (;;) {
    Result<uint32_t> crc =
        region_ != nullptr
            ? region_->ChecksumRead(base_, data_size_, chunk)
            : Result<uint32_t>(Crc32(raw_ + base_, data_size_));
    if (!crc.ok()) return crc;
    if (gen_ == nullptr || GenerationIntact()) return crc;
    MDOS_RETURN_IF_ERROR(FallbackToPinned());
  }
}

bool ObjectBuffer::GenerationIntact() const {
  // Seqlock read side: the fence keeps the payload copy above from being
  // reordered past the generation re-read; the descriptor's generation
  // was sampled by the home store BEFORE the offset was issued, so an
  // unchanged slot (in the same table incarnation) proves no destructive
  // transition overlapped the copy.
  std::atomic_thread_fence(std::memory_order_acquire);
  return gen_->reader.Epoch() == gen_epoch_ &&
         gen_->reader.Read(gen_slot_) == generation_;
}

Status ObjectBuffer::FallbackToPinned() const {
  if (refetch_ == nullptr) {
    return Status::Unavailable(
        "mapped object changed mid-read and the buffer has no client to "
        "fall back through");
  }
  // Held across the refetch so Disconnect cannot tear down the client
  // under us. No deadlock: the reply-dispatch thread that resolves the
  // refetch's futures never takes this mutex, and Disconnect only blocks
  // here until the refetch round-trips.
  MutexLock lock(refetch_->mutex);
  if (refetch_->client == nullptr) {
    return Status::NotConnected("client disconnected");
  }
  return refetch_->client->RefetchMapped(*this);
}

Status ObjectBuffer::ReadMetadata(uint64_t offset, void* dst,
                                  uint64_t size) const {
  MDOS_RETURN_IF_ERROR(CheckAccess(metadata_size_, offset, size));
  return RawRead(data_size_ + offset, dst, size);
}

Status ObjectBuffer::WriteMetadata(uint64_t offset, const void* src,
                                   uint64_t size) {
  MDOS_RETURN_IF_ERROR(CheckAccess(metadata_size_, offset, size));
  if (!writable_) {
    return Status::Sealed("buffer is read-only (object is sealed)");
  }
  return RawWrite(data_size_ + offset, src, size);
}

Result<std::vector<uint8_t>> ObjectBuffer::CopyData() const {
  std::vector<uint8_t> out(data_size_);
  MDOS_RETURN_IF_ERROR(ReadData(0, out.data(), out.size()));
  return out;
}

Status ObjectBuffer::WriteDataFrom(std::string_view bytes) {
  if (bytes.size() != data_size_) {
    return Status::Invalid("WriteDataFrom size mismatch");
  }
  return WriteData(0, bytes.data(), bytes.size());
}

// ---- NotificationListener --------------------------------------------------

Result<NotificationListener> NotificationListener::Connect(
    const std::string& socket_path, const std::string& subscriber_name) {
  NotificationListener listener;
  MDOS_ASSIGN_OR_RETURN(listener.fd_, net::UdsConnect(socket_path));
  SubscribeRequest request;
  request.subscriber_name = subscriber_name;
  MDOS_RETURN_IF_ERROR(SendMessage(listener.fd_.get(),
                                   MessageType::kSubscribeRequest,
                                   /*request_id=*/1, request));
  MDOS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      RecvExpect(listener.fd_.get(), MessageType::kSubscribeReply));
  MDOS_ASSIGN_OR_RETURN(SubscribeReply reply,
                        DecodeMessage<SubscribeReply>(body));
  MDOS_RETURN_IF_ERROR(reply.status);
  return listener;
}

Result<Notification> NotificationListener::Next(uint64_t timeout_ms) {
  if (!fd_.valid()) return Status::NotConnected("listener closed");
  // Wait for readability first so a quiet deadline surfaces as a clean
  // StatusCode::kTimeout instead of a read error.
  if (timeout_ms > 0) {
    // poll(2) takes an int of milliseconds; clamp so huge deadlines do
    // not wrap into "return immediately" or "wait forever".
    int wait_ms = static_cast<int>(
        std::min<uint64_t>(timeout_ms, std::numeric_limits<int>::max()));
    pollfd pfd{};
    pfd.fd = fd_.get();
    pfd.events = POLLIN;
    int ready;
    do {
      ready = ::poll(&pfd, 1, wait_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) return Status::FromErrno("poll notification socket");
    if (ready == 0) {
      return Status::Timeout("no notification within deadline");
    }
  }
  MDOS_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        RecvExpect(fd_.get(), MessageType::kNotification));
  return DecodeMessage<Notification>(body);
}

// ---- PlasmaClient (blocking shim over AsyncClient) -------------------------

namespace {

// Blocking wait bounded by the operation deadline. The store enforces
// the budget end to end, so the reply normally arrives in time; the
// local slack covers the UDS hop and scheduling noise, and is the
// last-ditch guarantee that a blocking caller gets a typed
// DeadlineExceeded rather than a hang even if the store itself is
// wedged. The orphaned future is resolved (and discarded) by the
// reply-dispatch thread whenever the straggling reply shows up.
constexpr int64_t kDeadlineSlackMs = 50;

template <typename T>
T TakeWithDeadline(Future<T> future, Deadline deadline) {
  if (deadline.infinite()) return future.Take();
  const uint64_t wait_ms =
      static_cast<uint64_t>(deadline.remaining_ms_ceil() + kDeadlineSlackMs);
  if (!future.WaitFor(wait_ms)) {
    return T(Status::DeadlineExceeded(
        "operation did not complete within its deadline"));
  }
  return future.Take();
}

}  // namespace

Result<std::unique_ptr<PlasmaClient>> PlasmaClient::Connect(
    const std::string& socket_path, ClientOptions options) {
  auto client = std::unique_ptr<PlasmaClient>(new PlasmaClient());
  MDOS_ASSIGN_OR_RETURN(client->core_,
                        AsyncClient::Connect(socket_path, options));
  return client;
}

PlasmaClient::~PlasmaClient() = default;

void PlasmaClient::AssertSingleThread() const {
#ifndef NDEBUG
  std::thread::id none;
  std::thread::id self = std::this_thread::get_id();
  // First caller stakes ownership; everyone after must match.
  if (!owner_thread_.compare_exchange_strong(none, self)) {
    assert(owner_thread_.load() == self &&
           "PlasmaClient is single-threaded: use one client per thread "
           "or switch to AsyncClient");
  }
#endif
}

Result<ObjectBuffer> PlasmaClient::Create(const ObjectId& id,
                                          uint64_t data_size,
                                          uint64_t metadata_size,
                                          bool replicate,
                                          Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(
      core_->CreateAsync(id, data_size, metadata_size, replicate, deadline),
      deadline);
}

Status PlasmaClient::CreateAndSeal(const ObjectId& id,
                                   std::string_view data,
                                   std::string_view metadata,
                                   bool replicate, Deadline deadline) {
  MDOS_ASSIGN_OR_RETURN(
      ObjectBuffer buffer,
      Create(id, data.size(), metadata.size(), replicate, deadline));
  if (!data.empty()) {
    MDOS_RETURN_IF_ERROR(buffer.WriteData(0, data.data(), data.size()));
  }
  if (!metadata.empty()) {
    MDOS_RETURN_IF_ERROR(
        buffer.WriteMetadata(0, metadata.data(), metadata.size()));
  }
  return Seal(id, deadline);
}

Status PlasmaClient::Seal(const ObjectId& id, Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(core_->SealAsync(id, deadline), deadline);
}

Status PlasmaClient::Abort(const ObjectId& id, Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(core_->AbortAsync(id, deadline), deadline);
}

Result<std::vector<ObjectBuffer>> PlasmaClient::Get(
    const std::vector<ObjectId>& ids, uint64_t timeout_ms,
    Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(
      core_->GetAsync(ids, timeout_ms, /*pinned=*/false, deadline),
      deadline);
}

Result<ObjectBuffer> PlasmaClient::Get(const ObjectId& id,
                                       uint64_t timeout_ms,
                                       Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(
      core_->GetAsync(id, timeout_ms, /*pinned=*/false, deadline),
      deadline);
}

Result<ObjectBuffer> PlasmaClient::GetPinned(const ObjectId& id,
                                             uint64_t timeout_ms,
                                             Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(
      core_->GetAsync(id, timeout_ms, /*pinned=*/true, deadline), deadline);
}

Status PlasmaClient::Release(const ObjectId& id, Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(core_->ReleaseAsync(id, deadline), deadline);
}

Result<bool> PlasmaClient::Contains(const ObjectId& id, Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(core_->ContainsAsync(id, deadline), deadline);
}

Status PlasmaClient::Delete(const ObjectId& id, Deadline deadline) {
  AssertSingleThread();
  return TakeWithDeadline(core_->DeleteAsync(id, deadline), deadline);
}

Result<std::vector<ObjectInfo>> PlasmaClient::List() {
  AssertSingleThread();
  return core_->ListAsync().Take();
}

Result<StoreStats> PlasmaClient::Stats() {
  AssertSingleThread();
  return core_->StatsAsync().Take();
}

Result<std::vector<ShardStatsEntry>> PlasmaClient::ShardStats() {
  AssertSingleThread();
  return core_->ShardStatsAsync().Take();
}

Result<std::vector<PeerStatsEntry>> PlasmaClient::PeerStats() {
  AssertSingleThread();
  return core_->PeerStatsAsync().Take();
}

Status PlasmaClient::Disconnect() { return core_->Disconnect(); }

uint32_t PlasmaClient::node_id() const { return core_->node_id(); }

const std::string& PlasmaClient::store_name() const {
  return core_->store_name();
}

}  // namespace mdos::plasma
