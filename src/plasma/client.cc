#include "plasma/client.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <cstring>

#include "common/crc32.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mdos::plasma {

// ---- ObjectBuffer ----------------------------------------------------------

Status ObjectBuffer::CheckAccess(uint64_t section_size, uint64_t offset,
                                 uint64_t size) const {
  if (!valid_) return Status::Invalid("buffer is not valid");
  if (offset + size < offset || offset + size > section_size) {
    return Status::Invalid("buffer access out of bounds");
  }
  return Status::OK();
}

Status ObjectBuffer::RawRead(uint64_t offset, void* dst,
                             uint64_t size) const {
  if (region_ != nullptr) {
    return region_->Read(base_ + offset, dst, size);
  }
  std::memcpy(dst, raw_ + base_ + offset, size);
  return Status::OK();
}

Status ObjectBuffer::RawWrite(uint64_t offset, const void* src,
                              uint64_t size) {
  if (region_ != nullptr) {
    return region_->Write(base_ + offset, src, size);
  }
  std::memcpy(raw_ + base_ + offset, src, size);
  return Status::OK();
}

Status ObjectBuffer::ReadData(uint64_t offset, void* dst,
                              uint64_t size) const {
  MDOS_RETURN_IF_ERROR(CheckAccess(data_size_, offset, size));
  return RawRead(offset, dst, size);
}

Status ObjectBuffer::WriteData(uint64_t offset, const void* src,
                               uint64_t size) {
  MDOS_RETURN_IF_ERROR(CheckAccess(data_size_, offset, size));
  if (!writable_) {
    return Status::Sealed("buffer is read-only (object is sealed)");
  }
  return RawWrite(offset, src, size);
}

Result<uint32_t> ObjectBuffer::ChecksumData(uint64_t chunk) const {
  if (!valid_) return Status::Invalid("buffer is not valid");
  if (region_ != nullptr) {
    return region_->ChecksumRead(base_, data_size_, chunk);
  }
  return Crc32(raw_ + base_, data_size_);
}

Status ObjectBuffer::ReadMetadata(uint64_t offset, void* dst,
                                  uint64_t size) const {
  MDOS_RETURN_IF_ERROR(CheckAccess(metadata_size_, offset, size));
  return RawRead(data_size_ + offset, dst, size);
}

Status ObjectBuffer::WriteMetadata(uint64_t offset, const void* src,
                                   uint64_t size) {
  MDOS_RETURN_IF_ERROR(CheckAccess(metadata_size_, offset, size));
  if (!writable_) {
    return Status::Sealed("buffer is read-only (object is sealed)");
  }
  return RawWrite(data_size_ + offset, src, size);
}

Result<std::vector<uint8_t>> ObjectBuffer::CopyData() const {
  std::vector<uint8_t> out(data_size_);
  MDOS_RETURN_IF_ERROR(ReadData(0, out.data(), out.size()));
  return out;
}

Status ObjectBuffer::WriteDataFrom(std::string_view bytes) {
  if (bytes.size() != data_size_) {
    return Status::Invalid("WriteDataFrom size mismatch");
  }
  return WriteData(0, bytes.data(), bytes.size());
}

// ---- NotificationListener --------------------------------------------------

Result<NotificationListener> NotificationListener::Connect(
    const std::string& socket_path, const std::string& subscriber_name) {
  NotificationListener listener;
  MDOS_ASSIGN_OR_RETURN(listener.fd_, net::UdsConnect(socket_path));
  SubscribeRequest request;
  request.subscriber_name = subscriber_name;
  MDOS_RETURN_IF_ERROR(SendMessage(
      listener.fd_.get(), MessageType::kSubscribeRequest, request));
  MDOS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      RecvExpect(listener.fd_.get(), MessageType::kSubscribeReply));
  MDOS_ASSIGN_OR_RETURN(SubscribeReply reply,
                        DecodeMessage<SubscribeReply>(body));
  MDOS_RETURN_IF_ERROR(reply.status);
  return listener;
}

Result<Notification> NotificationListener::Next(uint64_t timeout_ms) {
  if (!fd_.valid()) return Status::NotConnected("listener closed");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  auto body = RecvExpect(fd_.get(), MessageType::kNotification);
  if (!body.ok()) {
    if (body.status().Is(StatusCode::kIoError) &&
        body.status().message().find("Resource temporarily unavailable") !=
            std::string::npos) {
      return Status::Timeout("no notification within deadline");
    }
    return body.status();
  }
  return DecodeMessage<Notification>(*body);
}

// ---- PlasmaClient ----------------------------------------------------------

Result<std::unique_ptr<PlasmaClient>> PlasmaClient::Connect(
    const std::string& socket_path, ClientOptions options) {
  auto client = std::unique_ptr<PlasmaClient>(new PlasmaClient());
  client->options_ = options;
  MDOS_ASSIGN_OR_RETURN(client->fd_, net::UdsConnect(socket_path));

  ConnectRequest request;
  request.client_name = options.client_name;
  MDOS_RETURN_IF_ERROR(SendMessage(client->fd_.get(),
                                   MessageType::kConnectRequest, request));
  MDOS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      RecvExpect(client->fd_.get(), MessageType::kConnectReply));
  MDOS_ASSIGN_OR_RETURN(ConnectReply reply,
                        DecodeMessage<ConnectReply>(body));
  client->node_id_ = reply.node_id;
  client->pool_region_ = reply.pool_region_id;
  client->pool_size_ = reply.pool_size;
  client->pool_slab_offset_ = reply.pool_slab_offset;
  client->store_name_ = reply.store_name;

  // The store follows the reply with the pool memfd.
  MDOS_ASSIGN_OR_RETURN(net::UniqueFd pool_fd,
                        net::RecvFd(client->fd_.get()));

  if (options.fabric != nullptr &&
      reply.pool_region_id != UINT32_MAX) {
    // Fabric mode: attach the local pool region for modelled access. The
    // client runs on the store's node, so this is a local attachment.
    MDOS_ASSIGN_OR_RETURN(
        tf::AttachedRegion local,
        options.fabric->Attach(reply.node_id, reply.pool_region_id));
    client->local_region_ =
        std::make_shared<tf::AttachedRegion>(std::move(local));
  } else {
    // Raw mode: mmap the shared pool like upstream Plasma clients do.
    MDOS_ASSIGN_OR_RETURN(
        auto map, net::MemfdSegment::Map(
                      std::move(pool_fd),
                      reply.pool_slab_offset + reply.pool_size));
    client->pool_map_.emplace(std::move(map));
  }
  return client;
}

PlasmaClient::~PlasmaClient() { (void)Disconnect(); }

template <typename ReplyT, typename RequestT>
Result<ReplyT> PlasmaClient::Roundtrip(MessageType request_type,
                                       MessageType reply_type,
                                       const RequestT& request) {
  if (!fd_.valid()) return Status::NotConnected("client disconnected");
  MDOS_RETURN_IF_ERROR(SendMessage(fd_.get(), request_type, request));
  MDOS_ASSIGN_OR_RETURN(std::vector<uint8_t> body,
                        RecvExpect(fd_.get(), reply_type));
  return DecodeMessage<ReplyT>(body);
}

Result<std::shared_ptr<tf::AttachedRegion>> PlasmaClient::ResolveRegion(
    uint32_t node, uint32_t region) {
  if (options_.fabric == nullptr) {
    return Status::Unavailable(
        "remote object requires a fabric-enabled client");
  }
  auto key = std::make_pair(node, region);
  auto it = attachments_.find(key);
  if (it != attachments_.end()) return it->second;
  MDOS_ASSIGN_OR_RETURN(tf::AttachedRegion attached,
                        options_.fabric->Attach(node_id_, region));
  auto shared = std::make_shared<tf::AttachedRegion>(std::move(attached));
  attachments_.emplace(key, shared);
  return shared;
}

ObjectBuffer PlasmaClient::MakeBuffer(const GetReplyEntry& entry,
                                      bool writable) {
  ObjectBuffer buffer;
  buffer.id_ = entry.id;
  buffer.data_size_ = entry.data_size;
  buffer.metadata_size_ = entry.metadata_size;
  buffer.writable_ = writable;
  if (!entry.found) return buffer;  // invalid

  if (entry.location == ObjectLocation::kRemote) {
    auto region = ResolveRegion(entry.home_node, entry.home_region);
    if (!region.ok()) return buffer;  // invalid
    buffer.region_ = std::move(region).value();
    buffer.base_ = entry.offset;
    buffer.remote_ = true;
    buffer.valid_ = true;
    return buffer;
  }

  if (local_region_ != nullptr) {
    buffer.region_ = local_region_;
    buffer.base_ = entry.offset;
  } else if (pool_map_.has_value()) {
    buffer.raw_ = pool_map_->data() + pool_slab_offset_;
    buffer.base_ = entry.offset;
  } else {
    return buffer;  // invalid
  }
  buffer.valid_ = true;
  return buffer;
}

Result<ObjectBuffer> PlasmaClient::Create(const ObjectId& id,
                                          uint64_t data_size,
                                          uint64_t metadata_size) {
  CreateRequest request;
  request.id = id;
  request.data_size = data_size;
  request.metadata_size = metadata_size;
  MDOS_ASSIGN_OR_RETURN(
      CreateReply reply,
      (Roundtrip<CreateReply>(MessageType::kCreateRequest,
                              MessageType::kCreateReply, request)));
  MDOS_RETURN_IF_ERROR(reply.status);
  GetReplyEntry entry;
  entry.id = id;
  entry.found = true;
  entry.location = ObjectLocation::kLocal;
  entry.offset = reply.offset;
  entry.data_size = reply.data_size;
  entry.metadata_size = reply.metadata_size;
  ObjectBuffer buffer = MakeBuffer(entry, /*writable=*/true);
  if (!buffer.valid()) {
    return Status::Unknown("could not map created buffer");
  }
  return buffer;
}

Status PlasmaClient::CreateAndSeal(const ObjectId& id,
                                   std::string_view data,
                                   std::string_view metadata) {
  MDOS_ASSIGN_OR_RETURN(ObjectBuffer buffer,
                        Create(id, data.size(), metadata.size()));
  if (!data.empty()) {
    MDOS_RETURN_IF_ERROR(buffer.WriteData(0, data.data(), data.size()));
  }
  if (!metadata.empty()) {
    MDOS_RETURN_IF_ERROR(
        buffer.WriteMetadata(0, metadata.data(), metadata.size()));
  }
  return Seal(id);
}

Status PlasmaClient::Seal(const ObjectId& id) {
  SealRequest request;
  request.id = id;
  MDOS_ASSIGN_OR_RETURN(
      SealReply reply,
      (Roundtrip<SealReply>(MessageType::kSealRequest,
                            MessageType::kSealReply, request)));
  return reply.status;
}

Status PlasmaClient::Abort(const ObjectId& id) {
  AbortRequest request;
  request.id = id;
  MDOS_ASSIGN_OR_RETURN(
      AbortReply reply,
      (Roundtrip<AbortReply>(MessageType::kAbortRequest,
                             MessageType::kAbortReply, request)));
  return reply.status;
}

Result<std::vector<ObjectBuffer>> PlasmaClient::Get(
    const std::vector<ObjectId>& ids, uint64_t timeout_ms) {
  GetRequest request;
  request.ids = ids;
  request.timeout_ms = timeout_ms;
  MDOS_ASSIGN_OR_RETURN(
      GetReply reply,
      (Roundtrip<GetReply>(MessageType::kGetRequest,
                           MessageType::kGetReply, request)));
  MDOS_RETURN_IF_ERROR(reply.status);
  std::vector<ObjectBuffer> buffers;
  buffers.reserve(reply.entries.size());
  for (const GetReplyEntry& entry : reply.entries) {
    buffers.push_back(MakeBuffer(entry, /*writable=*/false));
  }
  return buffers;
}

Result<ObjectBuffer> PlasmaClient::Get(const ObjectId& id,
                                       uint64_t timeout_ms) {
  MDOS_ASSIGN_OR_RETURN(std::vector<ObjectBuffer> buffers,
                        Get(std::vector<ObjectId>{id}, timeout_ms));
  if (buffers.empty()) {
    return Status::Unknown("empty get reply");
  }
  if (!buffers[0].valid()) {
    return Status::KeyError("object " + id.Hex() + " not found");
  }
  return std::move(buffers[0]);
}

Status PlasmaClient::Release(const ObjectId& id) {
  ReleaseRequest request;
  request.id = id;
  MDOS_ASSIGN_OR_RETURN(
      ReleaseReply reply,
      (Roundtrip<ReleaseReply>(MessageType::kReleaseRequest,
                               MessageType::kReleaseReply, request)));
  return reply.status;
}

Result<bool> PlasmaClient::Contains(const ObjectId& id) {
  ContainsRequest request;
  request.id = id;
  MDOS_ASSIGN_OR_RETURN(
      ContainsReply reply,
      (Roundtrip<ContainsReply>(MessageType::kContainsRequest,
                                MessageType::kContainsReply, request)));
  return reply.contains;
}

Status PlasmaClient::Delete(const ObjectId& id) {
  DeleteRequest request;
  request.id = id;
  MDOS_ASSIGN_OR_RETURN(
      DeleteReply reply,
      (Roundtrip<DeleteReply>(MessageType::kDeleteRequest,
                              MessageType::kDeleteReply, request)));
  return reply.status;
}

Result<std::vector<ObjectInfo>> PlasmaClient::List() {
  ListRequest request;
  MDOS_ASSIGN_OR_RETURN(
      ListReply reply,
      (Roundtrip<ListReply>(MessageType::kListRequest,
                            MessageType::kListReply, request)));
  return reply.objects;
}

Result<StoreStats> PlasmaClient::Stats() {
  StatsRequest request;
  MDOS_ASSIGN_OR_RETURN(
      StatsReply reply,
      (Roundtrip<StatsReply>(MessageType::kStatsRequest,
                             MessageType::kStatsReply, request)));
  return reply.stats;
}

Status PlasmaClient::Disconnect() {
  if (!fd_.valid()) return Status::OK();
  ListRequest dummy;  // DisconnectRequest carries no payload
  (void)SendMessage(fd_.get(), MessageType::kDisconnectRequest, dummy);
  fd_.Reset();
  return Status::OK();
}

}  // namespace mdos::plasma
