#include "plasma/async_client.h"

#include <sys/socket.h>

#include "common/log.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mdos::plasma {

Result<std::unique_ptr<AsyncClient>> AsyncClient::Connect(
    const std::string& socket_path, ClientOptions options) {
  auto client = std::unique_ptr<AsyncClient>(new AsyncClient());
  client->options_ = options;
  MDOS_ASSIGN_OR_RETURN(client->fd_, net::UdsConnect(socket_path));

  // The handshake is the one synchronous exchange: nothing else can be in
  // flight before the pool fd has crossed the socket.
  ConnectRequest request;
  request.client_name = options.client_name;
  const uint64_t handshake_id = client->next_request_id_.fetch_add(1);
  MDOS_RETURN_IF_ERROR(SendMessage(client->fd_.get(),
                                   MessageType::kConnectRequest,
                                   handshake_id, request));
  MDOS_ASSIGN_OR_RETURN(
      std::vector<uint8_t> body,
      RecvExpect(client->fd_.get(), MessageType::kConnectReply));
  MDOS_ASSIGN_OR_RETURN(ConnectReply reply,
                        DecodeMessage<ConnectReply>(body));
  client->node_id_ = reply.node_id;
  client->pool_region_ = reply.pool_region_id;
  client->pool_size_ = reply.pool_size;
  client->pool_slab_offset_ = reply.pool_slab_offset;
  client->store_name_ = reply.store_name;

  // The store follows the reply with the pool memfd.
  MDOS_ASSIGN_OR_RETURN(net::UniqueFd pool_fd,
                        net::RecvFd(client->fd_.get()));

  if (options.fabric != nullptr && reply.pool_region_id != UINT32_MAX) {
    // Fabric mode: attach the local pool region for modelled access. The
    // client runs on the store's node, so this is a local attachment.
    MDOS_ASSIGN_OR_RETURN(
        tf::AttachedRegion local,
        options.fabric->Attach(reply.node_id, reply.pool_region_id));
    client->local_region_ =
        std::make_shared<tf::AttachedRegion>(std::move(local));
  } else {
    // Raw mode: mmap the shared pool like upstream Plasma clients do.
    MDOS_ASSIGN_OR_RETURN(
        auto map, net::MemfdSegment::Map(
                      std::move(pool_fd),
                      reply.pool_slab_offset + reply.pool_size));
    client->pool_map_.emplace(std::move(map));
  }

  // Mapped buffers handed out by this client reach back through the
  // refetch context for their generation-mismatch fallback.
  client->refetch_ = std::make_shared<ObjectBuffer::RefetchContext>();
  {
    MutexLock lock(client->refetch_->mutex);
    client->refetch_->client = client.get();
  }

  {
    MutexLock lock(client->pending_mutex_);
    client->running_ = true;
  }
  client->reader_ = std::thread([raw = client.get()] { raw->ReaderLoop(); });
  return client;
}

// mdos-check: allow-discard(a destructor has no error channel; Disconnect on an already-closed client reports NotConnected, which is exactly this path)
AsyncClient::~AsyncClient() { (void)Disconnect(); }

Status AsyncClient::Disconnect() {
  // Serializes concurrent disconnect/destructor paths (double-join UB).
  MutexLock disconnect_lock(disconnect_mutex_);
  // Detach outstanding mapped buffers first: their fallback path holds
  // the context mutex across its round-trip, so this blocks until any
  // in-flight refetch finishes (the reader is still running here) and
  // no new one can grab the client afterwards.
  if (refetch_ != nullptr) {
    MutexLock lock(refetch_->mutex);
    refetch_->client = nullptr;
  }
  bool was_running;
  {
    MutexLock lock(pending_mutex_);
    was_running = running_;
    running_ = false;
  }
  if (was_running) {
    MutexLock lock(send_mutex_);
    if (fd_.valid()) {
      ListRequest dummy;  // DisconnectRequest carries no payload
      // mdos-check: allow-discard(courtesy notice so the store drops us promptly; if the store is already gone the shutdown below cleans up the same way)
      (void)SendMessage(fd_.get(), MessageType::kDisconnectRequest,
                        kNoRequestId, dummy);
      // Wakes the reply-dispatch thread out of its blocking read; it
      // fails every outstanding promise before exiting.
      ::shutdown(fd_.get(), SHUT_RDWR);
    }
  }
  if (reader_.joinable()) reader_.join();
  // Belt and braces: if the reader never ran, fail stragglers here.
  FailAllPending(Status::NotConnected("client disconnected"));
  {
    // Senders read fd_ only under send_mutex_, so closing it here cannot
    // race a write onto a recycled descriptor.
    MutexLock lock(send_mutex_);
    fd_.Reset();
  }
  return Status::OK();
}

size_t AsyncClient::inflight() const {
  MutexLock lock(pending_mutex_);
  return pending_.size();
}

void AsyncClient::FailAllPending(const Status& status) {
  std::unordered_map<uint64_t, ReplyHandler> orphans;
  {
    MutexLock lock(pending_mutex_);
    orphans.swap(pending_);
    running_ = false;
  }
  for (auto& [id, handler] : orphans) {
    (void)id;
    handler(MessageType::kNotification, status, {});
  }
}

void AsyncClient::ReaderLoop() {
  // Scratch frame reused across replies: its payload capacity grows to
  // the largest reply seen and then the loop stops allocating.
  net::Frame frame;
  for (;;) {
    Status received = net::RecvFrame(fd_.get(), &frame);
    if (!received.ok()) {
      FailAllPending(Status::NotConnected(
          "connection closed: " + received.ToString()));
      return;
    }
    const auto type = static_cast<MessageType>(frame.type);
    if (type == MessageType::kNotification) {
      continue;  // subscriptions use a dedicated listener connection
    }
    auto tag = PeekRequestId(frame.payload);
    if (!tag.ok()) {
      FailAllPending(tag.status());
      return;
    }
    ReplyHandler handler;
    {
      MutexLock lock(pending_mutex_);
      auto it = pending_.find(*tag);
      if (it != pending_.end()) {
        handler = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (handler) {
      handler(type, Status::OK(), frame.payload);
    } else {
      MDOS_LOG_WARN << "async client: reply for unknown request " << *tag;
    }
  }
}

template <typename ReplyT, typename RequestT, typename Fn>
auto AsyncClient::Dispatch(MessageType request_type, MessageType reply_type,
                           const RequestT& request, Deadline deadline,
                           Fn transform)
    -> Future<std::invoke_result_t<Fn, ReplyT&&>> {
  using T = std::invoke_result_t<Fn, ReplyT&&>;
  Promise<T> promise;
  Future<T> future = promise.GetFuture();

  // Fail-fast contract: an operation whose budget is already gone never
  // touches the socket (and therefore never dials, queues, or sheds).
  if (deadline.expired()) {
    promise.Set(T(Status::DeadlineExceeded(
        "operation deadline expired before dispatch")));
    return future;
  }

  const uint64_t request_id = next_request_id_.fetch_add(1);
  {
    MutexLock lock(pending_mutex_);
    if (!running_) {
      promise.Set(T(Status::NotConnected("client disconnected")));
      return future;
    }
    // Registered before the send so a reply can never beat its handler.
    pending_.emplace(
        request_id,
        [promise, reply_type, transform](
            MessageType type, const Status& status,
            std::span<const uint8_t> payload) mutable {
          if (!status.ok()) {
            promise.Set(T(status));
            return;
          }
          if (type != reply_type) {
            promise.Set(T(Status::ProtocolError(
                "unexpected reply type " +
                std::to_string(static_cast<uint32_t>(type)))));
            return;
          }
          auto reply = DecodeMessage<ReplyT>(payload.data(), payload.size());
          if (!reply.ok()) {
            promise.Set(T(reply.status()));
            return;
          }
          promise.Set(transform(std::move(reply).value()));
        });
  }

  Status sent;
  {
    MutexLock lock(send_mutex_);
    send_writer_.Reset();
    // Remaining budget sampled at send time: queueing above this point
    // (the send mutex) is already charged against the operation.
    const uint64_t budget_ms =
        deadline.infinite()
            ? 0
            : static_cast<uint64_t>(deadline.remaining_ms_ceil());
    EncodeMessage(send_writer_, request_id, budget_ms, request);
    sent = net::SendFrame(fd_.get(), static_cast<uint32_t>(request_type),
                          send_writer_.data(), send_writer_.size());
  }
  if (!sent.ok()) {
    ReplyHandler handler;
    {
      MutexLock lock(pending_mutex_);
      auto it = pending_.find(request_id);
      if (it != pending_.end()) {
        handler = std::move(it->second);
        pending_.erase(it);
      }
    }
    if (handler) handler(reply_type, sent, {});
  }
  return future;
}

// ---- buffer construction ---------------------------------------------------

Result<std::shared_ptr<tf::AttachedRegion>> AsyncClient::ResolveRegion(
    uint32_t node, uint32_t region) {
  if (options_.fabric == nullptr) {
    return Status::Unavailable(
        "remote object requires a fabric-enabled client");
  }
  auto key = std::make_pair(node, region);
  {
    MutexLock lock(region_mutex_);
    auto it = attachments_.find(key);
    if (it != attachments_.end()) return it->second;
  }
  // Attach outside the lock (the fabric has its own synchronization);
  // concurrent resolvers of the same region race benignly — last one in
  // wins the cache slot, both attachments stay usable.
  MDOS_ASSIGN_OR_RETURN(tf::AttachedRegion attached,
                        options_.fabric->Attach(node_id_, region));
  auto shared = std::make_shared<tf::AttachedRegion>(std::move(attached));
  MutexLock lock(region_mutex_);
  attachments_[key] = shared;
  return shared;
}

Result<std::shared_ptr<const MappedGenTable>> AsyncClient::ResolveGenTable(
    uint32_t node, uint32_t region) {
  auto key = std::make_pair(node, region);
  {
    MutexLock lock(region_mutex_);
    auto it = gen_tables_.find(key);
    if (it != gen_tables_.end()) return it->second;
  }
  // ResolveRegion owns the attach-outside-the-lock discipline; the same
  // benign last-writer-wins race applies to the reader cache slot.
  MDOS_ASSIGN_OR_RETURN(std::shared_ptr<tf::AttachedRegion> attachment,
                        ResolveRegion(node, region));
  MDOS_ASSIGN_OR_RETURN(
      GenerationReader reader,
      GenerationReader::Open(attachment->unsafe_data(), attachment->size(),
                             options_.fabric->config().remote));
  auto table = std::make_shared<const MappedGenTable>(
      MappedGenTable{std::move(attachment), std::move(reader)});
  MutexLock lock(region_mutex_);
  gen_tables_[key] = table;
  return table;
}

ObjectBuffer AsyncClient::MakeBuffer(const GetReplyEntry& entry,
                                     bool writable) {
  ObjectBuffer buffer;
  buffer.id_ = entry.id;
  buffer.data_size_ = entry.data_size;
  buffer.metadata_size_ = entry.metadata_size;
  buffer.writable_ = writable;
  if (!entry.found) return buffer;  // invalid

  if (entry.location == ObjectLocation::kRemote) {
    auto region = ResolveRegion(entry.home_node, entry.home_region);
    if (!region.ok()) return buffer;  // invalid
    buffer.region_ = std::move(region).value();
    buffer.base_ = entry.offset;
    buffer.remote_ = true;
    if (entry.mapped && entry.gen_region != UINT32_MAX) {
      // Mapped descriptor: nothing pins these bytes at their home store,
      // so wire up generation validation. An unreachable table leaves
      // the descriptor unverifiable — treat the entry as not found
      // rather than serve bytes that could be torn.
      auto gen = ResolveGenTable(entry.home_node, entry.gen_region);
      if (!gen.ok()) return buffer;  // invalid
      buffer.gen_ = std::move(gen).value();
      buffer.generation_ = entry.generation;
      buffer.gen_slot_ = entry.gen_slot;
      buffer.gen_epoch_ = entry.gen_epoch;
      buffer.refetch_ = refetch_;
    }
    buffer.valid_ = true;
    return buffer;
  }

  if (local_region_ != nullptr) {
    buffer.region_ = local_region_;
    buffer.base_ = entry.offset;
  } else if (pool_map_.has_value()) {
    buffer.raw_ = pool_map_->data() + pool_slab_offset_;
    buffer.base_ = entry.offset;
  } else {
    return buffer;  // invalid
  }
  buffer.valid_ = true;
  return buffer;
}

// ---- operations ------------------------------------------------------------

Future<Result<ObjectBuffer>> AsyncClient::CreateAsync(
    const ObjectId& id, uint64_t data_size, uint64_t metadata_size,
    bool replicate, Deadline deadline) {
  CreateRequest request;
  request.id = id;
  request.data_size = data_size;
  request.metadata_size = metadata_size;
  request.replicate = replicate;
  return Dispatch<CreateReply>(
      MessageType::kCreateRequest, MessageType::kCreateReply, request,
      deadline,
      [this, id](CreateReply&& reply) -> Result<ObjectBuffer> {
        if (!reply.status.ok()) return reply.status;
        GetReplyEntry entry;
        entry.id = id;
        entry.found = true;
        entry.location = ObjectLocation::kLocal;
        entry.offset = reply.offset;
        entry.data_size = reply.data_size;
        entry.metadata_size = reply.metadata_size;
        ObjectBuffer buffer = MakeBuffer(entry, /*writable=*/true);
        if (!buffer.valid()) {
          return Status::Unknown("could not map created buffer");
        }
        return buffer;
      });
}

Future<Status> AsyncClient::SealAsync(const ObjectId& id,
                                      Deadline deadline) {
  SealRequest request;
  request.id = id;
  return Dispatch<SealReply>(
      MessageType::kSealRequest, MessageType::kSealReply, request, deadline,
      [](SealReply&& reply) { return reply.status; });
}

Future<Status> AsyncClient::AbortAsync(const ObjectId& id,
                                       Deadline deadline) {
  AbortRequest request;
  request.id = id;
  return Dispatch<AbortReply>(
      MessageType::kAbortRequest, MessageType::kAbortReply, request,
      deadline,
      [](AbortReply&& reply) { return reply.status; });
}

Future<Result<std::vector<ObjectBuffer>>> AsyncClient::GetAsync(
    const std::vector<ObjectId>& ids, uint64_t timeout_ms, bool pinned,
    Deadline deadline) {
  GetRequest request;
  request.ids = ids;
  request.timeout_ms = timeout_ms;
  request.pinned = pinned;
  return Dispatch<GetReply>(
      MessageType::kGetRequest, MessageType::kGetReply, request, deadline,
      [this](GetReply&& reply) -> Result<std::vector<ObjectBuffer>> {
        if (!reply.status.ok()) return reply.status;
        std::vector<ObjectBuffer> buffers;
        buffers.reserve(reply.entries.size());
        for (const GetReplyEntry& entry : reply.entries) {
          buffers.push_back(MakeBuffer(entry, /*writable=*/false));
        }
        return buffers;
      });
}

Future<Result<ObjectBuffer>> AsyncClient::GetAsync(const ObjectId& id,
                                                   uint64_t timeout_ms,
                                                   bool pinned,
                                                   Deadline deadline) {
  return GetOneInternal(id, timeout_ms, pinned, /*fallback=*/false,
                        deadline);
}

Future<Result<ObjectBuffer>> AsyncClient::GetOneInternal(const ObjectId& id,
                                                         uint64_t timeout_ms,
                                                         bool pinned,
                                                         bool fallback,
                                                         Deadline deadline) {
  GetRequest request;
  request.ids = {id};
  request.timeout_ms = timeout_ms;
  request.pinned = pinned;
  request.fallback = fallback;
  return Dispatch<GetReply>(
      MessageType::kGetRequest, MessageType::kGetReply, request, deadline,
      [this, id](GetReply&& reply) -> Result<ObjectBuffer> {
        if (!reply.status.ok()) return reply.status;
        if (reply.entries.empty()) {
          return Status::Unknown("empty get reply");
        }
        ObjectBuffer buffer =
            MakeBuffer(reply.entries[0], /*writable=*/false);
        if (!buffer.valid()) {
          return Status::KeyError("object " + id.Hex() + " not found");
        }
        return buffer;
      });
}

Status AsyncClient::RefetchMapped(const ObjectBuffer& stale) {
  // The descriptor went stale mid-read: its object was evicted, spilled,
  // deleted, or re-created at the home store. Fetch a pinned replacement
  // (`fallback` tags the request so the store counts mapped_fallbacks).
  MDOS_ASSIGN_OR_RETURN(ObjectBuffer fresh,
                        GetOneInternal(stale.id_, /*timeout_ms=*/0,
                                       /*pinned=*/true, /*fallback=*/true,
                                       Deadline::Infinite())
                            .Take());
  // One Release retires the dead mapped reference — the store consumes
  // mapped refs before pinned ones — leaving exactly the new pin for the
  // caller's eventual Release. This holds on the error path below too.
  MDOS_WARN_IF_ERROR(ReleaseAsync(stale.id_).Take(),
                     "retiring stale mapped reference during refetch");
  if (fresh.data_size_ != stale.data_size_ ||
      fresh.metadata_size_ != stale.metadata_size_) {
    // The id was re-created with a different shape; offsets the caller
    // derived from the stale buffer are meaningless against it.
    return Status::Invalid("object " + stale.id_.Hex() +
                           " was replaced while a mapped read was in "
                           "flight");
  }
  // Rebind the caller's buffer onto the pinned bytes and drop the
  // validation state: reads retried by the caller now hit stable memory.
  stale.region_ = fresh.region_;
  stale.raw_ = fresh.raw_;
  stale.base_ = fresh.base_;
  stale.remote_ = fresh.remote_;
  stale.gen_.reset();
  return Status::OK();
}

Future<Status> AsyncClient::ReleaseAsync(const ObjectId& id,
                                         Deadline deadline) {
  ReleaseRequest request;
  request.id = id;
  return Dispatch<ReleaseReply>(
      MessageType::kReleaseRequest, MessageType::kReleaseReply, request,
      deadline,
      [](ReleaseReply&& reply) { return reply.status; });
}

Future<Result<bool>> AsyncClient::ContainsAsync(const ObjectId& id,
                                                Deadline deadline) {
  ContainsRequest request;
  request.id = id;
  return Dispatch<ContainsReply>(
      MessageType::kContainsRequest, MessageType::kContainsReply, request,
      deadline,
      [](ContainsReply&& reply) -> Result<bool> { return reply.contains; });
}

Future<Status> AsyncClient::DeleteAsync(const ObjectId& id,
                                        Deadline deadline) {
  DeleteRequest request;
  request.id = id;
  return Dispatch<DeleteReply>(
      MessageType::kDeleteRequest, MessageType::kDeleteReply, request,
      deadline,
      [](DeleteReply&& reply) { return reply.status; });
}

Future<Result<std::vector<ObjectInfo>>> AsyncClient::ListAsync() {
  ListRequest request;
  return Dispatch<ListReply>(
      MessageType::kListRequest, MessageType::kListReply, request,
      Deadline::Infinite(),
      [](ListReply&& reply) -> Result<std::vector<ObjectInfo>> {
        return std::move(reply.objects);
      });
}

Future<Result<StoreStats>> AsyncClient::StatsAsync() {
  StatsRequest request;
  return Dispatch<StatsReply>(
      MessageType::kStatsRequest, MessageType::kStatsReply, request,
      Deadline::Infinite(),
      [](StatsReply&& reply) -> Result<StoreStats> { return reply.stats; });
}

Future<Result<std::vector<ShardStatsEntry>>> AsyncClient::ShardStatsAsync() {
  ShardStatsRequest request;
  return Dispatch<ShardStatsReply>(
      MessageType::kShardStatsRequest, MessageType::kShardStatsReply,
      request, Deadline::Infinite(),
      [](ShardStatsReply&& reply) -> Result<std::vector<ShardStatsEntry>> {
        return std::move(reply.shards);
      });
}

Future<Result<std::vector<PeerStatsEntry>>> AsyncClient::PeerStatsAsync() {
  PeerStatsRequest request;
  return Dispatch<PeerStatsReply>(
      MessageType::kPeerStatsRequest, MessageType::kPeerStatsReply,
      request, Deadline::Infinite(),
      [](PeerStatsReply&& reply) -> Result<std::vector<PeerStatsEntry>> {
        return std::move(reply.peers);
      });
}

}  // namespace mdos::plasma
