// SpillFile — the on-disk segment file behind the store's spill tier.
//
// Each store shard owns one SpillFile. When eviction would destroy a
// sealed object and StoreOptions::spill_dir is set, the shard appends
// the object's bytes here instead and the ObjectTable entry moves to
// kSpilled, remembering the record's file offset; a later Get reads the
// record back into the shared-memory pool. The framing discipline
// follows Arrow IPC: every record is self-describing and checksummed,
// so a reader never has to trust anything but the bytes in front of it.
//
// On-disk layout: a packed sequence of records, each
//
//   [ 56-byte header | payload (data section || metadata section) ]
//
// where the header carries a magic (live vs freed slot), the object id,
// the slot's payload capacity, the section sizes, a CRC32 of the
// payload, and a CRC32 of the header itself. Freed slots keep their
// header (remagicked) so a scan can stride over them and an append can
// reuse them first-fit; when freed capacity crosses half the file the
// owner is told to Compact(), which rewrites live records packed into a
// fresh file and reports every record's new offset.
//
// Crash safety: ReadBack and Recover() verify both CRCs. A truncated
// tail record (torn final write) or a payload CRC mismatch is detected
// and skipped — Recover keeps every intact record after the damage as
// long as headers stay readable, and stops at the first unreadable
// header (nothing beyond it can be framed).
//
// Not internally synchronized: each shard accesses its SpillFile under
// the shard mutex, mirroring the table/arena/eviction ownership rules.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "net/fd.h"

namespace mdos::plasma {

struct SpillFileStats {
  uint64_t file_bytes = 0;      // current file length
  uint64_t live_records = 0;
  uint64_t live_bytes = 0;      // payload bytes of live records
  uint64_t free_bytes = 0;      // reusable payload capacity in freed slots
  uint64_t appends = 0;         // cumulative records written
  uint64_t slot_reuses = 0;     // appends that recycled a freed slot
  uint64_t frees = 0;
  uint64_t compactions = 0;
  uint64_t corrupt_records = 0; // CRC failures seen by ReadBack/Recover
};

class SpillFile {
 public:
  // One live record as seen by Recover (and tests).
  struct RecordInfo {
    ObjectId id;
    uint64_t offset = 0;  // file offset of the record header
    uint64_t data_size = 0;
    uint64_t metadata_size = 0;
    uint64_t payload_size() const { return data_size + metadata_size; }
  };

  SpillFile() = default;
  SpillFile(SpillFile&&) = default;
  SpillFile& operator=(SpillFile&&) = default;

  // Creates (or truncates) the segment file.
  static Result<SpillFile> Open(std::string path);

  // Opens an existing segment and scans it record by record, verifying
  // both CRCs. Damaged records (truncated tail, corrupt payload, freed
  // slots) are skipped; the survivors are returned through live().
  static Result<SpillFile> Recover(std::string path);

  // Writes one record (data || metadata) and returns its file offset,
  // reusing a freed slot when one fits.
  Result<uint64_t> Append(const ObjectId& id, const uint8_t* payload,
                          uint64_t data_size, uint64_t metadata_size);

  // Reads the record at `offset` back into `dst` (payload_size() bytes),
  // verifying the header, the id, and the payload CRC. IoError on any
  // mismatch — a corrupt record is never silently served.
  Status ReadBack(const ObjectId& id, uint64_t offset, uint8_t* dst);

  // Releases the record's slot for reuse. The payload bytes stay on disk
  // until the slot is recycled or compacted.
  Status Free(uint64_t offset);

  // True when freed capacity justifies rewriting the file (the owner
  // should call Compact under its shard mutex).
  [[nodiscard]] bool ShouldCompact() const;

  // Rewrites live records packed into `path() + ".compact"`, renames it
  // over the segment, and reports each surviving record's new offset.
  Status Compact(
      const std::function<void(const ObjectId&, uint64_t new_offset)>&
          on_move);

  // Live records ordered by file offset (Recover fills this; Append and
  // Free maintain it).
  std::vector<RecordInfo> live() const;

  SpillFileStats stats() const;
  const std::string& path() const { return path_; }
  bool valid() const { return fd_.valid(); }

 private:
  struct Slot {
    ObjectId id;
    uint64_t capacity = 0;  // payload bytes reserved for the slot
    uint64_t data_size = 0;
    uint64_t metadata_size = 0;
    uint32_t payload_crc = 0;
  };

  Result<uint64_t> WriteRecord(uint64_t offset, uint64_t slot_capacity,
                               const ObjectId& id, const uint8_t* payload,
                               uint64_t data_size, uint64_t metadata_size);

  std::string path_;
  net::UniqueFd fd_;
  uint64_t end_offset_ = 0;  // file length == next append position

  // Both keyed by header offset, ordered so first-fit reuse and the
  // compaction/recovery walks get file order for free.
  std::map<uint64_t, Slot> live_;
  std::map<uint64_t, uint64_t> free_slots_;  // offset -> capacity

  SpillFileStats stats_;
};

}  // namespace mdos::plasma
