#include "plasma/store.h"

#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <unordered_set>

#include "alloc/first_fit_allocator.h"
#include "alloc/segregated_fit_allocator.h"
#include "common/clock.h"
#include "common/log.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mdos::plasma {

namespace {

std::unique_ptr<alloc::Allocator> MakeAllocator(AllocatorKind kind,
                                                uint64_t capacity) {
  switch (kind) {
    case AllocatorKind::kSegregatedFit:
      return std::make_unique<alloc::SegregatedFitAllocator>(capacity);
    case AllocatorKind::kFirstFit:
    default:
      return std::make_unique<alloc::FirstFitAllocator>(capacity);
  }
}

}  // namespace

// One connected client (one Unix socket).
struct Store::ClientConn {
  net::UniqueFd fd;
  std::string name;
  bool handshaken = false;
  bool subscriber = false;  // notification-only connection
  // Bytes received but not yet framed. A pipelining client may queue many
  // frames here between event-loop passes.
  std::vector<uint8_t> inbuf;
  // Pins of local objects held through this connection: id -> count.
  std::unordered_map<ObjectId, uint32_t> local_pins;
  // Remote objects handed out through this connection: id -> (loc, count).
  std::unordered_map<ObjectId, std::pair<RemoteObjectLocation, uint32_t>>
      remote_refs;
};

// A Get waiting for objects to be sealed (or for its deadline).
struct Store::PendingGet {
  int fd = -1;
  uint64_t request_id = kNoRequestId;  // echoed into the reply
  std::vector<ObjectId> order;  // reply preserves request order
  std::unordered_map<ObjectId, GetReplyEntry> ready;
  std::unordered_set<ObjectId> waiting;
  // Ids the local pass could not satisfy; consumed by ResolveGets.
  std::vector<ObjectId> missing;
  uint64_t timeout_ms = 0;
  int64_t deadline_ns = 0;
};

Store::Store(StoreOptions options, uint32_t node_id, uint32_t pool_region)
    : options_(std::move(options)),
      node_id_(node_id),
      pool_region_(pool_region) {
  socket_path_ = options_.socket_path.empty()
                     ? net::UniqueSocketPath(options_.name)
                     : options_.socket_path;
  allocator_ = MakeAllocator(options_.allocator, options_.capacity);
}

Result<std::unique_ptr<Store>> Store::Create(StoreOptions options) {
  auto store = std::unique_ptr<Store>(
      new Store(std::move(options), /*node_id=*/0,
                /*pool_region=*/UINT32_MAX));
  MDOS_ASSIGN_OR_RETURN(
      auto pool, net::MemfdSegment::Create("mdos-pool-" + store->name(),
                                           store->options_.capacity));
  store->own_pool_.emplace(std::move(pool));
  store->pool_base_ = store->own_pool_->data();
  store->pool_fd_ = store->own_pool_->fd();
  return store;
}

Result<std::unique_ptr<Store>> Store::CreateOnFabric(
    StoreOptions options, tf::Fabric* fabric, tf::NodeId node,
    tf::RegionId pool_region) {
  MDOS_ASSIGN_OR_RETURN(tf::RegionInfo info,
                        fabric->region_info(pool_region));
  if (info.owner != node) {
    return Status::Invalid("pool region is not owned by this node");
  }
  options.capacity = info.size;
  auto store = std::unique_ptr<Store>(
      new Store(std::move(options), node, pool_region));
  MDOS_ASSIGN_OR_RETURN(store->fabric_node_, fabric->node(node));
  store->fabric_ = fabric;
  store->pool_slab_offset_ = info.offset;
  store->pool_base_ = store->fabric_node_->data() + info.offset;
  // The pool fd is the node slab's memfd; clients that mmap it directly
  // apply pool_slab_offset from the connect reply.
  store->pool_fd_ = -1;  // resolved per-connection via NodeMemory::ShareFd
  // Allocator capacity must match the region, not the original option.
  store->allocator_ =
      MakeAllocator(store->options_.allocator, store->options_.capacity);
  return store;
}

Store::~Store() { Stop(); }

Status Store::Start() {
  if (running_.load()) return Status::Invalid("store already running");
  MDOS_ASSIGN_OR_RETURN(listen_fd_, net::UdsListen(socket_path_));
  poller_.Add(listen_fd_.get());
  running_.store(true);
  thread_ = std::thread([this] { EventLoop(); });
  MDOS_LOG_INFO << "store '" << options_.name << "' listening on "
                << socket_path_;
  return Status::OK();
}

void Store::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  poller_.Wakeup();
  if (thread_.joinable()) thread_.join();
  clients_.clear();
  pending_gets_.clear();
  listen_fd_.Reset();
  ::unlink(socket_path_.c_str());
}

void Store::EventLoop() {
  while (running_.load()) {
    int timeout_ms = FlushExpiredPendingGets();
    if (timeout_ms < 0 || timeout_ms > 200) timeout_ms = 200;
    auto ready = poller_.Wait(timeout_ms, [this](int fd) {
      if (fd == listen_fd_.get()) {
        AcceptClient();
      } else {
        auto it = clients_.find(fd);
        if (it != clients_.end()) {
          OnClientReadable(*it->second);
        }
      }
    });
    if (!ready.ok()) {
      MDOS_LOG_ERROR << "store poll failed: " << ready.status();
      break;
    }
  }
}

void Store::AcceptClient() {
  auto conn_fd = net::Accept(listen_fd_.get());
  if (!conn_fd.ok()) return;
  int fd = conn_fd->get();
  // Replies are written by the single event-loop thread. A client that
  // stops draining its socket must not park the whole store in write():
  // bound the send and shed the offender instead.
  timeval send_timeout{};
  send_timeout.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  auto conn = std::make_unique<ClientConn>();
  conn->fd = std::move(conn_fd).value();
  poller_.Add(fd);
  clients_.emplace(fd, std::move(conn));
}

void Store::OnClientReadable(ClientConn& conn) {
  int fd = conn.fd.get();

  // Drain everything the socket has buffered without blocking the loop.
  uint8_t chunk[64 * 1024];
  bool closed = false;
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + n);
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    closed = true;
    break;
  }

  // Decode every complete frame; a pipelining client's queued requests
  // become one batch.
  std::vector<net::Frame> batch;
  size_t offset = 0;
  Status parse = Status::OK();
  while (offset < conn.inbuf.size()) {
    net::Frame frame;
    size_t consumed = 0;
    parse = net::DecodeFrame(conn.inbuf.data() + offset,
                             conn.inbuf.size() - offset, &frame, &consumed);
    if (!parse.ok() || consumed == 0) break;
    offset += consumed;
    batch.push_back(std::move(frame));
  }
  conn.inbuf.erase(conn.inbuf.begin(),
                   conn.inbuf.begin() + static_cast<ptrdiff_t>(offset));

  // Dispatch in arrival order; Gets defer their remote half to the end of
  // the batch. `conn` may die mid-batch (decode error, disconnect), so
  // re-check liveness between frames.
  std::vector<PendingGet> batch_gets;
  for (const net::Frame& frame : batch) {
    if (clients_.find(fd) == clients_.end()) return;
    DispatchFrame(conn, frame, &batch_gets);
  }
  if (clients_.find(fd) == clients_.end()) return;
  ResolveGets(conn, batch_gets);

  if (clients_.find(fd) == clients_.end()) return;
  if (!parse.ok()) {
    MDOS_LOG_WARN << "store: dropping client on bad frame: " << parse;
    DropClient(fd);
    return;
  }
  if (closed) DropClient(fd);
}

void Store::DispatchFrame(ClientConn& conn, const net::Frame& frame,
                          std::vector<PendingGet>* batch_gets) {
  int fd = conn.fd.get();
  const auto type = static_cast<MessageType>(frame.type);
  const std::vector<uint8_t>& body = frame.payload;
  auto tag = PeekRequestId(body);
  if (!tag.ok()) {
    DropClient(fd);
    return;
  }
  const uint64_t request_id = *tag;
  switch (type) {
    case MessageType::kConnectRequest:
      HandleConnect(conn, request_id, body);
      break;
    case MessageType::kCreateRequest:
      HandleCreate(conn, request_id, body);
      break;
    case MessageType::kSealRequest:
      HandleSeal(conn, request_id, body);
      break;
    case MessageType::kAbortRequest:
      HandleAbort(conn, request_id, body);
      break;
    case MessageType::kGetRequest:
      HandleGet(conn, request_id, body, batch_gets);
      break;
    case MessageType::kReleaseRequest:
      HandleRelease(conn, request_id, body);
      break;
    case MessageType::kContainsRequest:
      HandleContains(conn, request_id, body);
      break;
    case MessageType::kDeleteRequest:
      HandleDelete(conn, request_id, body);
      break;
    case MessageType::kListRequest: HandleList(conn, request_id); break;
    case MessageType::kStatsRequest: HandleStats(conn, request_id); break;
    case MessageType::kSubscribeRequest:
      HandleSubscribe(conn, request_id, body);
      break;
    case MessageType::kDisconnectRequest: DropClient(fd); break;
    default:
      MDOS_LOG_WARN << "store: unknown message type " << frame.type;
      DropClient(fd);
      break;
  }
}

void Store::DropClient(int fd) {
  auto it = clients_.find(fd);
  if (it == clients_.end()) return;
  std::unique_ptr<ClientConn> conn = std::move(it->second);
  clients_.erase(it);
  poller_.Remove(fd);

  // Drop pending gets issued by this connection.
  pending_gets_.remove_if(
      [fd](const PendingGet& p) { return p.fd == fd; });

  std::vector<std::pair<ObjectId, RemoteObjectLocation>> remote_unpins;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Release all local pins held through this connection.
    for (const auto& [id, count] : conn->local_pins) {
      for (uint32_t i = 0; i < count; ++i) {
        (void)table_.ReleaseRef(id);
      }
    }
    // Abort unsealed objects this client created but never sealed.
    for (const ObjectId& id : table_.UnsealedCreatedBy(fd)) {
      auto removed = table_.Remove(id, /*force=*/true);
      if (removed.ok()) {
        (void)allocator_->Free(removed->offset);
      }
    }
    for (const auto& [id, ref] : conn->remote_refs) {
      for (uint32_t i = 0; i < ref.second; ++i) {
        remote_unpins.emplace_back(id, ref.first);
      }
    }
  }
  // RPC outside the state mutex (see HandleCreate for the rationale).
  if (dist_hooks_ != nullptr && options_.pin_remote_objects) {
    for (const auto& [id, loc] : remote_unpins) {
      dist_hooks_->UnpinRemote(id, loc);
    }
  }
}

void Store::HandleConnect(ClientConn& conn, uint64_t request_id,
                          const std::vector<uint8_t>& body) {
  auto request = DecodeMessage<ConnectRequest>(body);
  if (!request.ok()) {
    DropClient(conn.fd.get());
    return;
  }
  conn.name = request->client_name;
  conn.handshaken = true;

  ConnectReply reply;
  reply.node_id = node_id_;
  reply.pool_region_id = pool_region_;
  reply.pool_size = options_.capacity;
  reply.pool_slab_offset = pool_slab_offset_;
  reply.store_name = options_.name;
  int fd = conn.fd.get();
  if (!SendMessage(fd, MessageType::kConnectReply, request_id, reply)
           .ok()) {
    DropClient(fd);
    return;
  }
  // Ship the pool fd so the client can mmap the shared memory, exactly
  // like upstream Plasma's file-descriptor coordination.
  net::UniqueFd pool_fd;
  if (own_pool_.has_value()) {
    auto dup = own_pool_->DupFd();
    if (dup.ok()) pool_fd = std::move(dup).value();
  } else if (fabric_node_ != nullptr) {
    auto dup = fabric_node_->ShareFd();
    if (dup.ok()) pool_fd = std::move(dup).value();
  }
  if (!pool_fd.valid() ||
      !net::SendFd(fd, pool_fd.get()).ok()) {
    DropClient(fd);
  }
}

Result<alloc::Allocation> Store::AllocateWithEviction(uint64_t size) {
  if (size > options_.capacity) {
    return Status::CapacityError(
        "object of " + std::to_string(size) +
        " bytes exceeds store capacity " +
        std::to_string(options_.capacity));
  }
  while (true) {
    auto allocation = allocator_->Allocate(size);
    if (allocation.ok()) return allocation;

    auto victims = eviction_.ChooseVictims(
        size, [this](const ObjectId& id) { return IsEvictable(id); });
    if (victims.empty()) {
      return Status::OutOfMemory(
          "store full and no evictable objects for " +
          std::to_string(size) + " bytes");
    }
    for (const ObjectId& victim : victims) {
      auto removed = table_.Remove(victim);
      if (!removed.ok()) continue;  // raced with a new pin; skip
      (void)allocator_->Free(removed->offset);
      eviction_.Remove(victim);
      remote_pins_.erase(victim);
      if (shared_index_ != nullptr) {
        (void)shared_index_->Remove(victim);
      }
      ++eviction_count_;
    }
  }
}

bool Store::IsEvictable(const ObjectId& id) const {
  auto entry = table_.Lookup(id);
  if (!entry.ok()) return false;
  if (entry->state != ObjectState::kSealed) return false;
  if (entry->local_refs != 0) return false;
  auto pins = remote_pins_.find(id);
  if (pins != remote_pins_.end() && !pins->second.empty()) return false;
  if (external_pin_check_ && external_pin_check_(id)) return false;
  return true;
}

void Store::HandleCreate(ClientConn& conn, uint64_t request_id,
                         const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<CreateRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }

  CreateReply reply;
  reply.data_size = request->data_size;
  reply.metadata_size = request->metadata_size;

  // Local existence check.
  bool exists_locally;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    exists_locally = table_.Contains(request->id);
  }
  // Identifier-uniqueness probe across the distributed system (§IV-A2).
  // Deliberately outside the state mutex: the peer answering our probe
  // may simultaneously probe us, and its answer needs our mutex.
  bool exists_remotely = false;
  if (!exists_locally && options_.check_global_uniqueness &&
      dist_hooks_ != nullptr) {
    exists_remotely = dist_hooks_->IdKnownRemotely(request->id);
  }
  if (exists_locally || exists_remotely) {
    reply.status = Status::AlreadyExists(
        "object id " + request->id.Hex() +
        (exists_remotely ? " exists in a remote store" : " exists"));
    (void)SendMessage(fd, MessageType::kCreateReply, request_id, reply);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // Re-check: another client may have created the id while the probe
    // was in flight.
    if (table_.Contains(request->id)) {
      reply.status =
          Status::AlreadyExists("object id " + request->id.Hex());
    } else {
      uint64_t total = request->data_size + request->metadata_size;
      if (total == 0) {
        reply.status = Status::Invalid("object must not be empty");
      } else {
        auto allocation = AllocateWithEviction(total);
        if (!allocation.ok()) {
          reply.status = allocation.status();
        } else {
          ObjectEntry entry;
          entry.id = request->id;
          entry.offset = allocation->offset;
          entry.data_size = request->data_size;
          entry.metadata_size = request->metadata_size;
          entry.creator_fd = fd;
          Status added = table_.AddCreated(entry);
          if (added.ok()) {
            reply.offset = allocation->offset;
          } else {
            (void)allocator_->Free(allocation->offset);
            reply.status = added;
          }
        }
      }
    }
  }
  (void)SendMessage(fd, MessageType::kCreateReply, request_id, reply);
}

void Store::HandleSeal(ClientConn& conn, uint64_t request_id,
                       const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<SealRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  SealReply reply;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    reply.status = table_.Seal(request->id);
    if (reply.status.ok()) {
      auto entry = table_.Lookup(request->id);
      if (entry.ok()) {
        eviction_.Add(request->id, entry->total_size());
        if (shared_index_ != nullptr) {
          // Publish into disaggregated memory so peers can find the
          // object without an RPC. Index-full is non-fatal: peers fall
          // back to the RPC lookup path.
          (void)shared_index_->Insert(
              request->id, IndexedObject{entry->offset, entry->data_size,
                                         entry->metadata_size});
        }
      }
    }
  }
  (void)SendMessage(fd, MessageType::kSealReply, request_id, reply);
  if (reply.status.ok()) {
    // Sealing makes the object available: wake matching pending gets and
    // notify subscribers.
    ServePendingGetsFor(request->id);
    Notification notice;
    notice.id = request->id;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto entry = table_.Lookup(request->id);
      if (entry.ok()) {
        notice.data_size = entry->data_size;
        notice.metadata_size = entry->metadata_size;
      }
    }
    BroadcastNotification(notice);
  }
}

void Store::HandleSubscribe(ClientConn& conn, uint64_t request_id,
                            const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<SubscribeRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  conn.subscriber = true;
  conn.name = request->subscriber_name;
  SubscribeReply reply;
  (void)SendMessage(fd, MessageType::kSubscribeReply, request_id, reply);
}

void Store::BroadcastNotification(const Notification& notice) {
  std::vector<int> dead;
  for (auto& [fd, conn] : clients_) {
    if (!conn->subscriber) continue;
    if (!SendMessage(fd, MessageType::kNotification, kNoRequestId, notice)
             .ok()) {
      dead.push_back(fd);
    }
  }
  for (int fd : dead) DropClient(fd);
}

void Store::HandleAbort(ClientConn& conn, uint64_t request_id,
                        const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<AbortRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  AbortReply reply;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto entry = table_.Lookup(request->id);
    if (!entry.ok()) {
      reply.status = entry.status();
    } else if (entry->state == ObjectState::kSealed) {
      reply.status =
          Status::Sealed("cannot abort sealed object " + request->id.Hex());
    } else {
      auto removed = table_.Remove(request->id, /*force=*/true);
      if (removed.ok()) {
        (void)allocator_->Free(removed->offset);
      }
      reply.status = removed.status();
    }
  }
  (void)SendMessage(fd, MessageType::kAbortReply, request_id, reply);
}

std::optional<GetReplyEntry> Store::TryLocalGet(const ObjectId& id) {
  auto entry = table_.Lookup(id);
  if (!entry.ok() || entry->state != ObjectState::kSealed) {
    return std::nullopt;
  }
  GetReplyEntry out;
  out.id = id;
  out.found = true;
  out.location = ObjectLocation::kLocal;
  out.offset = entry->offset;
  out.data_size = entry->data_size;
  out.metadata_size = entry->metadata_size;
  return out;
}

void Store::HandleGet(ClientConn& conn, uint64_t request_id,
                      const std::vector<uint8_t>& body,
                      std::vector<PendingGet>* batch_gets) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<GetRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }

  PendingGet pending;
  pending.fd = fd;
  pending.request_id = request_id;
  pending.order = request->ids;
  pending.timeout_ms = request->timeout_ms;

  std::unordered_set<ObjectId> missing_seen;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    for (const ObjectId& id : request->ids) {
      if (pending.ready.count(id) != 0 || missing_seen.count(id) != 0) {
        continue;  // duplicate id in request: one entry suffices
      }
      auto local = TryLocalGet(id);
      if (local.has_value()) {
        (void)table_.AddRef(id);
        ++conn.local_pins[id];
        eviction_.Touch(id);
        pending.ready.emplace(id, *local);
      } else {
        missing_seen.insert(id);
        pending.missing.push_back(id);
      }
    }
  }
  batch_gets->push_back(std::move(pending));
}

void Store::AdoptRemoteObject(ClientConn& conn, PendingGet& pending,
                              const ObjectId& id,
                              const RemoteObjectLocation& loc,
                              bool count_hit) {
  GetReplyEntry entry;
  entry.id = id;
  entry.found = true;
  entry.location = ObjectLocation::kRemote;
  entry.offset = loc.offset;
  entry.data_size = loc.data_size;
  entry.metadata_size = loc.metadata_size;
  entry.home_node = loc.home_node;
  entry.home_region = loc.home_region;
  pending.ready.emplace(id, entry);
  if (count_hit) {
    // Hits are only counted where the look-up itself was counted, so
    // stats never report more hits than look-ups.
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++remote_lookup_hits_;
  }
  if (options_.pin_remote_objects && dist_hooks_ != nullptr) {
    dist_hooks_->PinRemote(id, loc);
    auto& ref = conn.remote_refs[id];
    ref.first = loc;
    ++ref.second;
  }
}

std::unordered_map<ObjectId, RemoteObjectLocation>
Store::BatchedRemoteLookup(const std::vector<ObjectId>& ids,
                           bool count_lookups) {
  std::unordered_map<ObjectId, RemoteObjectLocation> resolved;
  if (dist_hooks_ == nullptr || ids.empty()) return resolved;
  std::vector<ObjectId> unknown;
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : ids) {
    if (seen.insert(id).second) unknown.push_back(id);
  }
  // RPC outside the mutex; the paper's local store performs the look-up
  // synchronously on the client's behalf.
  auto locations = dist_hooks_->LookupRemote(unknown);
  if (count_lookups) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    remote_lookups_ += unknown.size();
  }
  for (size_t i = 0; i < unknown.size() && i < locations.size(); ++i) {
    if (locations[i].has_value()) {
      resolved.emplace(unknown[i], *locations[i]);
    }
  }
  return resolved;
}

void Store::ResolveGets(ClientConn& conn, std::vector<PendingGet>& gets) {
  if (gets.empty()) return;

  // One remote look-up for every id unknown anywhere in the batch: a
  // pipelining client that issued N Gets for remote objects pays one RPC
  // round instead of N.
  std::vector<ObjectId> unknown;
  for (const PendingGet& pending : gets) {
    unknown.insert(unknown.end(), pending.missing.begin(),
                   pending.missing.end());
  }
  auto resolved = BatchedRemoteLookup(unknown, /*count_lookups=*/true);

  const int fd = conn.fd.get();
  for (PendingGet& pending : gets) {
    // A failed reply for an earlier get in this batch drops the client
    // (and frees `conn`); every get in the batch is from that client, so
    // stop.
    if (clients_.find(fd) == clients_.end()) return;
    for (const ObjectId& id : pending.missing) {
      auto it = resolved.find(id);
      if (it != resolved.end()) {
        AdoptRemoteObject(conn, pending, id, it->second,
                          /*count_hit=*/true);
        continue;
      }
      // Re-run the local pass: a later frame of the same batch (or a
      // concurrent client) may have sealed the object after this get's
      // first look — parking it would miss an available object.
      std::optional<GetReplyEntry> local;
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        local = TryLocalGet(id);
        if (local.has_value()) {
          (void)table_.AddRef(id);
          ++conn.local_pins[id];
          eviction_.Touch(id);
        }
      }
      if (local.has_value()) {
        pending.ready.emplace(id, *local);
      } else {
        pending.waiting.insert(id);
      }
    }
    pending.missing.clear();
    if (pending.waiting.empty() || pending.timeout_ms == 0) {
      ReplyPendingGet(pending);
      continue;
    }
    pending.deadline_ns =
        MonotonicNanos() +
        static_cast<int64_t>(pending.timeout_ms) * 1000000;
    pending_gets_.push_back(std::move(pending));
  }
}

void Store::ReplyPendingGet(PendingGet& pending) {
  auto it = clients_.find(pending.fd);
  if (it == clients_.end()) return;
  GetReply reply;
  for (const ObjectId& id : pending.order) {
    auto ready = pending.ready.find(id);
    if (ready != pending.ready.end()) {
      reply.entries.push_back(ready->second);
    } else {
      GetReplyEntry missing;
      missing.id = id;
      missing.found = false;
      reply.entries.push_back(missing);
    }
  }
  if (!SendMessage(pending.fd, MessageType::kGetReply, pending.request_id,
                   reply)
           .ok()) {
    DropClient(pending.fd);
  }
}

void Store::ServePendingGetsFor(const ObjectId& id) {
  // Completed gets are moved out of the list before any reply is sent:
  // a failed send inside ReplyPendingGet drops the client, which prunes
  // pending_gets_ and would invalidate iterators held here.
  std::vector<PendingGet> completed;
  for (auto it = pending_gets_.begin(); it != pending_gets_.end();) {
    PendingGet& pending = *it;
    if (pending.waiting.erase(id) > 0) {
      std::lock_guard<std::mutex> lock(state_mutex_);
      auto local = TryLocalGet(id);
      if (local.has_value()) {
        auto conn_it = clients_.find(pending.fd);
        if (conn_it != clients_.end()) {
          (void)table_.AddRef(id);
          ++conn_it->second->local_pins[id];
          eviction_.Touch(id);
          pending.ready.emplace(id, *local);
        }
      }
    }
    if (pending.waiting.empty()) {
      completed.push_back(std::move(pending));
      it = pending_gets_.erase(it);
    } else {
      ++it;
    }
  }
  for (PendingGet& pending : completed) {
    ReplyPendingGet(pending);
  }
}

int Store::FlushExpiredPendingGets() {
  if (pending_gets_.empty()) return -1;
  int64_t now = MonotonicNanos();
  int64_t next_deadline = INT64_MAX;
  std::vector<PendingGet> expired;
  for (auto it = pending_gets_.begin(); it != pending_gets_.end();) {
    if (it->deadline_ns > now) {
      next_deadline = std::min(next_deadline, it->deadline_ns);
      ++it;
      continue;
    }
    expired.push_back(std::move(*it));
    it = pending_gets_.erase(it);
  }

  if (!expired.empty()) {
    // Deadline reached: one final remote look-up for the stragglers (they
    // may have been sealed on a peer while we waited), batched across all
    // expired gets, then reply.
    std::vector<ObjectId> stragglers;
    for (const PendingGet& pending : expired) {
      stragglers.insert(stragglers.end(), pending.waiting.begin(),
                        pending.waiting.end());
    }
    auto resolved = BatchedRemoteLookup(stragglers, /*count_lookups=*/false);
    for (PendingGet& pending : expired) {
      auto conn_it = clients_.find(pending.fd);
      for (auto id_it = pending.waiting.begin();
           id_it != pending.waiting.end();) {
        auto hit = resolved.find(*id_it);
        if (hit == resolved.end() || conn_it == clients_.end()) {
          ++id_it;
          continue;
        }
        AdoptRemoteObject(*conn_it->second, pending, *id_it, hit->second,
                          /*count_hit=*/false);
        id_it = pending.waiting.erase(id_it);
      }
      ReplyPendingGet(pending);
    }
  }

  if (next_deadline == INT64_MAX) return -1;
  int64_t ms = (next_deadline - now + 999999) / 1000000;
  return static_cast<int>(std::max<int64_t>(ms, 1));
}

void Store::HandleRelease(ClientConn& conn, uint64_t request_id,
                          const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<ReleaseRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  ReleaseReply reply;
  std::optional<RemoteObjectLocation> remote_unpin;

  auto local_it = conn.local_pins.find(request->id);
  if (local_it != conn.local_pins.end()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto refs = table_.ReleaseRef(request->id);
    reply.status = refs.status();
    if (--local_it->second == 0) {
      conn.local_pins.erase(local_it);
    }
  } else {
    auto remote_it = conn.remote_refs.find(request->id);
    if (remote_it != conn.remote_refs.end()) {
      remote_unpin = remote_it->second.first;
      if (--remote_it->second.second == 0) {
        conn.remote_refs.erase(remote_it);
      }
    } else {
      reply.status = Status::KeyError("release: object " +
                                      request->id.Hex() + " not held");
    }
  }
  if (remote_unpin.has_value() && dist_hooks_ != nullptr &&
      options_.pin_remote_objects) {
    dist_hooks_->UnpinRemote(request->id, *remote_unpin);
  }
  (void)SendMessage(fd, MessageType::kReleaseReply, request_id, reply);
}

void Store::HandleContains(ClientConn& conn, uint64_t request_id,
                           const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<ContainsRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  ContainsReply reply;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    reply.contains = table_.ContainsSealed(request->id);
  }
  (void)SendMessage(fd, MessageType::kContainsReply, request_id, reply);
}

void Store::HandleDelete(ClientConn& conn, uint64_t request_id,
                         const std::vector<uint8_t>& body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<DeleteRequest>(body);
  if (!request.ok()) {
    DropClient(fd);
    return;
  }
  DeleteReply reply;
  bool deleted = false;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto pins = remote_pins_.find(request->id);
    if (pins != remote_pins_.end() && !pins->second.empty()) {
      reply.status = Status::Invalid("delete: object " +
                                     request->id.Hex() +
                                     " is pinned by remote clients");
    } else {
      auto removed = table_.Remove(request->id);
      reply.status = removed.status();
      if (removed.ok()) {
        (void)allocator_->Free(removed->offset);
        eviction_.Remove(request->id);
        remote_pins_.erase(request->id);
        if (shared_index_ != nullptr) {
          (void)shared_index_->Remove(request->id);
        }
        deleted = true;
      }
    }
  }
  if (deleted) {
    if (dist_hooks_ != nullptr) {
      dist_hooks_->NotifyDeleted(request->id);
    }
    Notification notice;
    notice.id = request->id;
    notice.deleted = true;
    BroadcastNotification(notice);
  }
  (void)SendMessage(fd, MessageType::kDeleteReply, request_id, reply);
}

void Store::HandleList(ClientConn& conn, uint64_t request_id) {
  ListReply reply;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    reply.objects = table_.List();
  }
  (void)SendMessage(conn.fd.get(), MessageType::kListReply, request_id,
                    reply);
}

void Store::HandleStats(ClientConn& conn, uint64_t request_id) {
  StatsReply reply;
  reply.stats = stats();
  (void)SendMessage(conn.fd.get(), MessageType::kStatsReply, request_id,
                    reply);
}

// ---- thread-safe peer surface ---------------------------------------------

Result<RemoteObjectLocation> Store::LookupForPeer(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto entry = table_.Lookup(id);
  if (!entry.ok()) return entry.status();
  if (entry->state != ObjectState::kSealed) {
    return Status::NotSealed("object " + id.Hex() + " not sealed yet");
  }
  RemoteObjectLocation loc;
  loc.home_node = node_id_;
  loc.home_region = pool_region_;
  loc.offset = entry->offset;
  loc.data_size = entry->data_size;
  loc.metadata_size = entry->metadata_size;
  return loc;
}

bool Store::ContainsId(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return table_.Contains(id);
}

Status Store::PinForPeer(const ObjectId& id, uint32_t peer_node) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (!table_.ContainsSealed(id)) {
    return Status::KeyError("pin: object " + id.Hex() + " not sealed here");
  }
  ++remote_pins_[id][peer_node];
  return Status::OK();
}

Status Store::UnpinForPeer(const ObjectId& id, uint32_t peer_node) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto it = remote_pins_.find(id);
  if (it == remote_pins_.end()) {
    return Status::KeyError("unpin: object " + id.Hex() + " not pinned");
  }
  auto peer_it = it->second.find(peer_node);
  if (peer_it == it->second.end()) {
    return Status::KeyError("unpin: no pins from node " +
                            std::to_string(peer_node));
  }
  if (--peer_it->second == 0) {
    it->second.erase(peer_it);
  }
  if (it->second.empty()) {
    remote_pins_.erase(it);
  }
  return Status::OK();
}

uint32_t Store::RemotePins(const ObjectId& id) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto it = remote_pins_.find(id);
  if (it == remote_pins_.end()) return 0;
  uint32_t total = 0;
  for (const auto& [node, count] : it->second) {
    (void)node;
    total += count;
  }
  return total;
}

StoreStats Store::stats() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  StoreStats s;
  s.capacity = options_.capacity;
  s.bytes_in_use = table_.bytes_in_use();
  s.objects_total = table_.size();
  s.objects_sealed = table_.sealed_count();
  s.evictions = eviction_count_;
  s.remote_lookups = remote_lookups_;
  s.remote_lookup_hits = remote_lookup_hits_;
  return s;
}

alloc::AllocatorStats Store::allocator_stats() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return allocator_->stats();
}

}  // namespace mdos::plasma
