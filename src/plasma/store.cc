#include "plasma/store.h"

#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <unordered_set>

#include "alloc/first_fit_allocator.h"
#include "alloc/segregated_fit_allocator.h"
#include "common/clock.h"
#include "common/log.h"
#include "net/frame.h"
#include "net/socket.h"

namespace mdos::plasma {

namespace {

constexpr uint32_t kMaxShards = 64;
constexpr int kAcceptBackoffStartMs = 10;
constexpr int kAcceptBackoffMaxMs = 1000;

std::unique_ptr<alloc::Allocator> MakeAllocator(AllocatorKind kind,
                                                uint64_t capacity) {
  switch (kind) {
    case AllocatorKind::kSegregatedFit:
      return std::make_unique<alloc::SegregatedFitAllocator>(capacity);
    case AllocatorKind::kFirstFit:
    default:
      return std::make_unique<alloc::FirstFitAllocator>(capacity);
  }
}

}  // namespace

// ClientConn / PendingGet / Shard are defined in store.h so their lock
// annotations (GUARDED_BY on owner state, the shard-before-index
// ACQUIRED_BEFORE order) are visible to the thread-safety analysis at
// every use site.

// ---- non-blocking egress ---------------------------------------------------

template <typename Message>
void Store::QueueReply(Shard& shard, ClientConn& conn, MessageType type,
                       uint64_t request_id, const Message& msg) {
  // The per-connection encode scratch: a recycled payload buffer from
  // the connection's own queue, adopted by a Writer and moved straight
  // back in — the encode → enqueue → flush cycle allocates nothing in
  // steady state and the payload is never copied.
  wire::Writer w;
  w.Adopt(conn.tx.AcquireBuffer());
  EncodeMessage(w, request_id, msg);
  Status queued =
      conn.tx.Append(static_cast<uint32_t>(type), w.TakeBuffer());
  if (!queued.ok()) {
    // An unencodable reply (payload past the frame bound) must not
    // leave the request silently unanswered forever — shed the client
    // as the old blocking path did on a failed send.
    MDOS_LOG_WARN << "store: dropping client '" << conn.name
                  << "' on oversize reply: " << queued;
    DropClient(shard, conn.fd.get());
    return;
  }
  MarkDirty(shard, conn);
  // Enforce the egress cap at enqueue time too: a single pipelined
  // batch of expensive requests (thousands of Lists, say) must not
  // build replies past the cap before the end-of-pass flush runs.
  // FlushConn sheds the connection if the flush leaves it over the cap.
  if (conn.tx.pending_bytes() > options_.max_egress_queue_bytes) {
    FlushConn(shard, conn);
  }
}

void Store::MarkDirty(Shard& shard, ClientConn& conn) {
  if (conn.dirty) return;
  conn.dirty = true;
  shard.dirty.push_back(conn.fd.get());
}

void Store::FlushDirtyConns(Shard& shard) {
  if (shard.dirty.empty()) return;
  std::vector<int> fds;
  fds.swap(shard.dirty);
  for (int fd : fds) {
    auto it = shard.clients.find(fd);
    if (it == shard.clients.end()) continue;  // dropped mid-pass
    it->second->dirty = false;
    FlushConn(shard, *it->second);
  }
}

void Store::AccumulateTxStats(Shard& shard, ClientConn& conn) {
  const net::TxQueueStats& now = conn.tx.stats();
  net::TxQueueStats& last = conn.reported_tx;
  shard.tx_frames.fetch_add(now.frames_enqueued - last.frames_enqueued,
                            std::memory_order_relaxed);
  shard.tx_frames_coalesced.fetch_add(
      now.frames_coalesced - last.frames_coalesced,
      std::memory_order_relaxed);
  shard.tx_writev_calls.fetch_add(now.writev_calls - last.writev_calls,
                                  std::memory_order_relaxed);
  shard.tx_bytes.fetch_add(now.bytes_tx - last.bytes_tx,
                           std::memory_order_relaxed);
  shard.tx_blocked_events.fetch_add(
      now.egress_blocked_events - last.egress_blocked_events,
      std::memory_order_relaxed);
  last = now;
}

void Store::FlushConn(Shard& shard, ClientConn& conn) {
  int fd = conn.fd.get();
  auto state = conn.tx.Flush(fd);
  AccumulateTxStats(shard, conn);
  if (!state.ok()) {
    // EPIPE/ECONNRESET: the client vanished mid-reply; routine shedding.
    DropClient(shard, fd);
    return;
  }
  if (*state == net::TxQueue::FlushState::kBlocked) {
    if (conn.tx.pending_bytes() > options_.max_egress_queue_bytes) {
      MDOS_LOG_WARN << "store: client '" << conn.name
                    << "' not draining its socket ("
                    << conn.tx.pending_bytes()
                    << " bytes queued past the "
                    << options_.max_egress_queue_bytes
                    << "-byte egress cap); dropping";
      DropClient(shard, fd);
      return;
    }
    if (!conn.write_armed) {
      shard.poller.SetWriteInterest(fd, true);
      conn.write_armed = true;
    }
  } else if (conn.write_armed) {
    shard.poller.SetWriteInterest(fd, false);
    conn.write_armed = false;
  }
}

Status Store::FlushConnBlocking(Shard& shard, ClientConn& conn,
                                int timeout_ms) {
  int fd = conn.fd.get();
  const int64_t deadline =
      MonotonicNanos() + int64_t{timeout_ms} * 1000000;
  while (true) {
    auto state = conn.tx.Flush(fd);
    AccumulateTxStats(shard, conn);
    MDOS_RETURN_IF_ERROR(state.status());
    if (*state == net::TxQueue::FlushState::kDrained) return Status::OK();
    int64_t left_ms = (deadline - MonotonicNanos()) / 1000000;
    if (left_ms <= 0) return Status::Timeout("handshake flush timed out");
    MDOS_ASSIGN_OR_RETURN(bool writable,
                          net::WaitWritable(fd, static_cast<int>(left_ms)));
    if (!writable) return Status::Timeout("handshake flush timed out");
  }
}

void Store::OnClientWritable(Shard& shard, int fd) {
  auto it = shard.clients.find(fd);
  if (it == shard.clients.end()) return;
  FlushConn(shard, *it->second);
}

Store::Store(StoreOptions options, uint32_t node_id, uint32_t pool_region)
    : options_(std::move(options)),
      node_id_(node_id),
      pool_region_(pool_region) {
  socket_path_ = options_.socket_path.empty()
                     ? net::UniqueSocketPath(options_.name)
                     : options_.socket_path;
}

void Store::InitShards() {
  const AllocatorKind kind = options_.allocator;
  uint32_t requested = std::clamp<uint32_t>(options_.shards, 1, kMaxShards);
  pool_alloc_ = std::make_unique<alloc::ShardedAllocator>(
      options_.capacity, requested, [kind](uint64_t arena_capacity) {
        return MakeAllocator(kind, arena_capacity);
      });
  shards_.clear();
  shards_.reserve(pool_alloc_->shard_count());
  for (uint32_t i = 0; i < pool_alloc_->shard_count(); ++i) {
    auto shard = std::make_unique<Shard>(index_mutex_);
    shard->index = i;
    {
      // No threads exist yet; the lock only satisfies the analysis.
      MutexLock lock(shard->mutex);
      shard->arena = &pool_alloc_->arena(i);
      shard->table.set_self_node(node_id_);
    }
    shards_.push_back(std::move(shard));
  }
}

uint32_t Store::shard_count() const {
  return static_cast<uint32_t>(shards_.size());
}

uint32_t Store::ShardIndexOf(const ObjectId& id) const {
  return static_cast<uint32_t>(std::hash<ObjectId>{}(id) %
                               shards_.size());
}

Store::Shard& Store::OwnerShard(const ObjectId& id) {
  return *shards_[ShardIndexOf(id)];
}

Result<std::unique_ptr<Store>> Store::Create(StoreOptions options) {
  auto store = std::unique_ptr<Store>(
      new Store(std::move(options), /*node_id=*/0,
                /*pool_region=*/UINT32_MAX));
  MDOS_ASSIGN_OR_RETURN(
      auto pool, net::MemfdSegment::Create("mdos-pool-" + store->name(),
                                           store->options_.capacity));
  store->own_pool_.emplace(std::move(pool));
  store->pool_base_ = store->own_pool_->data();
  store->pool_fd_ = store->own_pool_->fd();
  store->InitShards();
  return store;
}

Result<std::unique_ptr<Store>> Store::CreateOnFabric(
    StoreOptions options, tf::Fabric* fabric, tf::NodeId node,
    tf::RegionId pool_region) {
  MDOS_ASSIGN_OR_RETURN(tf::RegionInfo info,
                        fabric->region_info(pool_region));
  if (info.owner != node) {
    return Status::Invalid("pool region is not owned by this node");
  }
  options.capacity = info.size;
  auto store = std::unique_ptr<Store>(
      new Store(std::move(options), node, pool_region));
  MDOS_ASSIGN_OR_RETURN(store->fabric_node_, fabric->node(node));
  store->fabric_ = fabric;
  store->pool_slab_offset_ = info.offset;
  store->pool_base_ = store->fabric_node_->data() + info.offset;
  // The pool fd is the node slab's memfd; clients that mmap it directly
  // apply pool_slab_offset from the connect reply.
  store->pool_fd_ = -1;  // resolved per-connection via NodeMemory::ShareFd
  // Arena capacities must match the region, not the original option.
  store->InitShards();
  return store;
}

Store::~Store() { Stop(); }

Status Store::Start() {
  if (running_.load()) return Status::Invalid("store already running");
  if (!options_.spill_dir.empty()) {
    // Best-effort create; a real failure surfaces from SpillFile::Open.
    (void)::mkdir(options_.spill_dir.c_str(), 0755);
    for (auto& shard : shards_) {
      MDOS_ASSIGN_OR_RETURN(
          auto spill,
          SpillFile::Open(options_.spill_dir + "/" + options_.name +
                          ".shard" + std::to_string(shard->index) +
                          ".spill"));
      // Shard threads are not running yet; the lock satisfies the
      // analysis (and any concurrent peer-surface caller post-restart).
      MutexLock lock(shard->mutex);
      shard->spill.emplace(std::move(spill));
    }
  }
  MDOS_ASSIGN_OR_RETURN(
      listen_fd_, net::UdsListen(socket_path_, options_.accept_backlog));
  // Non-blocking so the accept loop can drain the backlog and classify
  // EAGAIN vs resource exhaustion without ever parking in accept(2).
  MDOS_RETURN_IF_ERROR(net::SetNonBlocking(listen_fd_.get()));
  accept_poller_.Add(listen_fd_.get());
  next_shard_ = 0;
  accept_backoff_ms_ = 0;
  running_.store(true);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { ShardLoop(*s); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  {
    MutexLock lock(reheal_mutex_);
    reheal_running_ = true;
  }
  reheal_thread_ = std::thread([this] { RehealLoop(); });
  MDOS_LOG_INFO << "store '" << options_.name << "' listening on "
                << socket_path_ << " (" << shards_.size() << " shard"
                << (shards_.size() == 1 ? "" : "s") << ")";
  return Status::OK();
}

void Store::Stop() {
  // The re-heal driver issues peer RPCs; stop it first so no replicate
  // call races the teardown of the shards it reads from.
  {
    MutexLock lock(reheal_mutex_);
    reheal_running_ = false;
    reheal_queue_.clear();
  }
  reheal_cv_.NotifyAll();
  if (reheal_thread_.joinable()) reheal_thread_.join();
  if (!running_.exchange(false)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
    return;
  }
  accept_poller_.Wakeup();
  for (auto& shard : shards_) shard->poller.Wakeup();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  for (auto& shard : shards_) {
    shard->clients.clear();
    shard->pending_gets.clear();
    shard->dirty.clear();
    shard->parked_gets.store(0);
    shard->client_count.store(0);
    shard->subscriber_count.store(0);
    MutexLock lock(shard->mailbox_mutex);
    shard->mailbox.clear();
  }
  // The spill tier does not persist across runs: close and delete each
  // shard's segment. Shard mutexes guard against a peer-surface call
  // still in flight on the RPC thread.
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    if (shard->spill.has_value()) {
      std::string spill_path = shard->spill->path();
      shard->spill.reset();
      ::unlink(spill_path.c_str());
    }
  }
  accept_poller_.Remove(listen_fd_.get());
  listen_fd_.Reset();
  ::unlink(socket_path_.c_str());
}

// ---- accept thread ---------------------------------------------------------

void Store::AcceptLoop() {
  while (running_.load()) {
    auto ready = accept_poller_.Wait(200, [this](int fd, uint32_t) {
      if (fd == listen_fd_.get()) AcceptPending();
    });
    if (!ready.ok()) {
      MDOS_LOG_ERROR << "store accept poll failed: " << ready.status();
      break;
    }
  }
}

void Store::AcceptPending() {
  for (;;) {
    int err = 0;
    net::UniqueFd conn_fd = net::TryAccept(listen_fd_.get(), &err);
    if (!conn_fd.valid()) {
      if (err == EAGAIN) return;  // backlog drained
      if (err == ECONNABORTED) continue;  // peer gave up; keep draining
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        // Fd/memory exhaustion is transient: shedding the accept loop
        // would strand the whole store, so log, back off, and retry.
        // Connections keep queueing in the (bounded) listen backlog.
        accept_backoff_ms_ =
            accept_backoff_ms_ == 0
                ? kAcceptBackoffStartMs
                : std::min(accept_backoff_ms_ * 2, kAcceptBackoffMaxMs);
        MDOS_LOG_WARN << "store accept: " << strerror(err)
                      << "; backing off " << accept_backoff_ms_ << "ms";
        std::this_thread::sleep_for(
            std::chrono::milliseconds(accept_backoff_ms_));
        return;
      }
      MDOS_LOG_WARN << "store accept failed: " << strerror(err);
      return;
    }
    accept_backoff_ms_ = 0;

    int fd = conn_fd.get();
    // Replies are written by the connection's home shard thread through
    // its non-blocking write queue: O_NONBLOCK makes EAGAIN the
    // backpressure signal, so a client that stops draining its socket
    // queues bytes (up to max_egress_queue_bytes) instead of parking the
    // shard in write(2).
    MDOS_WARN_IF_ERROR(net::SetNonBlocking(fd),
                       "marking accepted client socket non-blocking");
    auto conn = std::make_shared<ClientConn>();
    conn->fd = std::move(conn_fd);

    // Round-robin placement; the shard adopts the connection on its own
    // thread (poller registration is not thread-safe by design).
    Shard* home = shards_[next_shard_].get();
    next_shard_ = (next_shard_ + 1) % shards_.size();
    home->Post([home, conn = std::move(conn), fd]() mutable {
      home->poller.Add(fd);
      home->clients.emplace(fd, std::move(conn));
      home->client_count.fetch_add(1, std::memory_order_relaxed);
    });
  }
}

// ---- shard event loops -----------------------------------------------------

void Store::ShardLoop(Shard& shard) {
  while (running_.load()) {
    DrainMailbox(shard);
    int timeout_ms = FlushExpiredPendingGets(shard);
    // Mailbox tasks and expired gets may have queued egress; flush it
    // before parking in the poller.
    FlushDirtyConns(shard);
    if (timeout_ms < 0 || timeout_ms > 200) timeout_ms = 200;
    auto ready =
        shard.poller.Wait(timeout_ms, [this, &shard](int fd,
                                                     uint32_t events) {
          // Writable first: draining queued residue may disarm write
          // interest before the read pass queues fresh replies.
          if (events & net::kPollerWritable) OnClientWritable(shard, fd);
          if (events & net::kPollerReadable) OnClientReadable(shard, fd);
        });
    if (!ready.ok()) {
      MDOS_LOG_ERROR << "store shard " << shard.index
                     << " poll failed: " << ready.status();
      break;
    }
    // One coalesced gather write per connection touched this pass.
    FlushDirtyConns(shard);
  }
}

void Store::DrainMailbox(Shard& shard) {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(shard.mailbox_mutex);
    tasks.swap(shard.mailbox);
  }
  for (auto& task : tasks) task();
}

void Store::OnClientReadable(Shard& shard, int fd) {
  auto it = shard.clients.find(fd);
  if (it == shard.clients.end()) return;
  // Keep the connection alive across a mid-batch drop.
  std::shared_ptr<ClientConn> conn_ref = it->second;
  ClientConn& conn = *conn_ref;

  // Drain everything the socket has buffered without blocking the loop.
  // FIONREAD sizes the receive scratch so bytes land directly in place:
  // no intermediate chunk buffer, no copy, and the vector's capacity is
  // reused across batches.
  bool closed = false;
  for (;;) {
    int avail = 0;
    if (::ioctl(fd, FIONREAD, &avail) != 0 || avail <= 0) avail = 4096;
    const size_t base = conn.inbuf.size();
    conn.inbuf.resize(base + static_cast<size_t>(avail));
    ssize_t n =
        ::recv(fd, conn.inbuf.data() + base, static_cast<size_t>(avail),
               MSG_DONTWAIT);
    if (n > 0) {
      conn.inbuf.resize(base + static_cast<size_t>(n));
      if (n < avail) break;  // drained at this instant
      continue;
    }
    conn.inbuf.resize(base);
    if (n == 0) {
      closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    closed = true;
    break;
  }

  // Decode every complete frame as a zero-copy view into the receive
  // scratch; a pipelining client's queued requests become one batch. The
  // consumed prefix is erased only after dispatch (the views alias it).
  std::vector<net::FrameView> batch;
  size_t offset = 0;
  Status parse = Status::OK();
  while (offset < conn.inbuf.size()) {
    net::FrameView view;
    size_t consumed = 0;
    parse = net::DecodeFrameView(conn.inbuf.data() + offset,
                                 conn.inbuf.size() - offset, &view,
                                 &consumed);
    if (!parse.ok() || consumed == 0) break;
    offset += consumed;
    batch.push_back(view);
  }

  // Dispatch in arrival order; Gets defer their remote half to the end of
  // the batch. `conn` may be dropped mid-batch (decode error,
  // disconnect), so re-check liveness between frames.
  std::vector<PendingGet> batch_gets;
  for (const net::FrameView& frame : batch) {
    if (shard.clients.find(fd) == shard.clients.end()) return;
    DispatchFrame(shard, conn, frame, &batch_gets);
  }
  if (shard.clients.find(fd) == shard.clients.end()) return;
  ResolveGets(shard, conn, batch_gets);

  if (shard.clients.find(fd) == shard.clients.end()) return;
  conn.inbuf.erase(conn.inbuf.begin(),
                   conn.inbuf.begin() + static_cast<ptrdiff_t>(offset));
  if (!parse.ok()) {
    MDOS_LOG_WARN << "store: dropping client on bad frame: " << parse;
    DropClient(shard, fd);
    return;
  }
  if (closed) DropClient(shard, fd);
}

void Store::DispatchFrame(Shard& shard, ClientConn& conn,
                          const net::FrameView& frame,
                          std::vector<PendingGet>* batch_gets) {
  int fd = conn.fd.get();
  const auto type = static_cast<MessageType>(frame.type);
  const std::span<const uint8_t> body(frame.payload, frame.size);
  wire::Reader header_reader(frame.payload, frame.size);
  auto header = wire::MessageHeader::DecodeFrom(header_reader);
  if (!header.ok()) {
    DropClient(shard, fd);
    return;
  }
  const uint64_t request_id = header->request_id;
  // Remaining end-to-end budget stamped by the client when the frame was
  // sent. Restarted here rather than decremented by queueing time: the
  // UDS hop is local, and the client's own clock re-check on the reply
  // keeps the end-to-end bound honest. Downstream peer hops DO decrement
  // (the dist layer clamps every RPC to this deadline).
  const Deadline op_deadline = Deadline::FromBudgetMs(
      header->deadline_ms > static_cast<uint64_t>(Deadline::kInfiniteMs)
          ? Deadline::kInfiniteMs
          : static_cast<int64_t>(header->deadline_ms));
  switch (type) {
    case MessageType::kConnectRequest:
      HandleConnect(shard, conn, request_id, body);
      break;
    case MessageType::kCreateRequest:
      HandleCreate(shard, conn, request_id, body, op_deadline);
      break;
    case MessageType::kSealRequest:
      HandleSeal(shard, conn, request_id, body);
      break;
    case MessageType::kAbortRequest:
      HandleAbort(shard, conn, request_id, body);
      break;
    case MessageType::kGetRequest:
      HandleGet(shard, conn, request_id, body, op_deadline, batch_gets);
      break;
    case MessageType::kReleaseRequest:
      HandleRelease(shard, conn, request_id, body);
      break;
    case MessageType::kContainsRequest:
      HandleContains(shard, conn, request_id, body);
      break;
    case MessageType::kDeleteRequest:
      HandleDelete(shard, conn, request_id, body);
      break;
    case MessageType::kListRequest:
      HandleList(shard, conn, request_id);
      break;
    case MessageType::kStatsRequest:
      HandleStats(shard, conn, request_id);
      break;
    case MessageType::kShardStatsRequest:
      HandleShardStats(shard, conn, request_id);
      break;
    case MessageType::kPeerStatsRequest:
      HandlePeerStats(shard, conn, request_id);
      break;
    case MessageType::kSubscribeRequest:
      HandleSubscribe(shard, conn, request_id, body);
      break;
    case MessageType::kDisconnectRequest: DropClient(shard, fd); break;
    default:
      MDOS_LOG_WARN << "store: unknown message type " << frame.type;
      DropClient(shard, fd);
      break;
  }
}

void Store::DropClient(Shard& shard, int fd) {
  auto it = shard.clients.find(fd);
  if (it == shard.clients.end()) return;
  std::shared_ptr<ClientConn> conn = std::move(it->second);
  // Best-effort final flush: replies queued earlier in this batch still
  // reach a client being dropped for a later protocol violation (and
  // their counters are folded into the shard stats before teardown).
  // mdos-check: allow-discard(final courtesy flush to a client already being dropped; its socket may be gone, and either way the fd closes next)
  if (!conn->tx.empty()) (void)conn->tx.Flush(fd);
  AccumulateTxStats(shard, *conn);
  shard.clients.erase(it);
  shard.poller.Remove(fd);
  shard.client_count.fetch_sub(1, std::memory_order_relaxed);
  if (conn->subscriber) {
    shard.subscriber_count.fetch_sub(1, std::memory_order_relaxed);
  }

  // Drop pending gets issued by this connection.
  size_t dropped = 0;
  shard.pending_gets.remove_if([fd, &dropped](const PendingGet& p) {
    if (p.fd != fd) return false;
    ++dropped;
    return true;
  });
  shard.parked_gets.fetch_sub(dropped, std::memory_order_relaxed);

  // The connection may hold pins on — and have unsealed creations in —
  // any shard; visit each owner shard once.
  std::vector<std::vector<std::pair<ObjectId, uint32_t>>> pins_by_shard(
      shards_.size());
  for (const auto& [id, count] : conn->local_pins) {
    pins_by_shard[ShardIndexOf(id)].emplace_back(id, count);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& owner = *shards_[s];
    MutexLock lock(owner.mutex);
    for (const auto& [id, count] : pins_by_shard[s]) {
      for (uint32_t i = 0; i < count; ++i) {
        // mdos-check: allow-discard(the object may have been deleted while this client still held a pin; KeyError here is the normal race)
        (void)owner.table.ReleaseRef(id);
      }
    }
    // Abort unsealed objects this client created but never sealed.
    for (const ObjectId& id : owner.table.UnsealedCreatedBy(fd)) {
      auto removed = owner.table.Remove(id, /*force=*/true);
      if (removed.ok()) {
        MDOS_WARN_IF_ERROR(owner.arena->Free(removed->offset),
                           "freeing aborted object of disconnecting client");
      }
    }
  }
  std::vector<std::pair<ObjectId, RemoteObjectLocation>> remote_unpins;
  for (const auto& [id, ref] : conn->remote_refs) {
    // Mapped refs owe the home store nothing; only pinned refs unpin.
    for (uint32_t i = 0; i < ref.pinned; ++i) {
      remote_unpins.emplace_back(id, ref.loc);
    }
  }
  // RPC outside any shard mutex (see HandleCreate for the rationale).
  if (dist_hooks_ != nullptr && options_.pin_remote_objects) {
    for (const auto& [id, loc] : remote_unpins) {
      // mdos-check: allow-blocking(DistHooks peer RPC, deadline-bounded; making the unpin path async is tracked in ROADMAP)
      dist_hooks_->UnpinRemote(id, loc);
    }
  }
}

void Store::HandleConnect(Shard& home, ClientConn& conn,
                          uint64_t request_id,
                          std::span<const uint8_t> body) {
  auto request = DecodeMessage<ConnectRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, conn.fd.get());
    return;
  }
  conn.name = request->client_name;
  conn.handshaken = true;

  ConnectReply reply;
  reply.node_id = node_id_;
  reply.pool_region_id = pool_region_;
  reply.pool_size = options_.capacity;
  reply.pool_slab_offset = pool_slab_offset_;
  reply.store_name = options_.name;
  int fd = conn.fd.get();
  // The SCM_RIGHTS fd message below must follow the reply bytes in
  // stream order, so the handshake (once per connection, a ~100-byte
  // frame into an empty socket buffer) flushes the queue synchronously.
  QueueReply(home, conn, MessageType::kConnectReply, request_id, reply);
  // mdos-check: allow-blocking(handshake-only ordered flush: the SCM_RIGHTS fd pass must trail the reply bytes in stream order; once per connection, 5 s cap)
  if (!FlushConnBlocking(home, conn, /*timeout_ms=*/5000).ok()) {
    DropClient(home, fd);
    return;
  }
  // Ship the pool fd so the client can mmap the shared memory, exactly
  // like upstream Plasma's file-descriptor coordination.
  net::UniqueFd pool_fd;
  if (own_pool_.has_value()) {
    auto dup = own_pool_->DupFd();
    if (dup.ok()) pool_fd = std::move(dup).value();
  } else if (fabric_node_ != nullptr) {
    auto dup = fabric_node_->ShareFd();
    if (dup.ok()) pool_fd = std::move(dup).value();
  }
  // sendmsg of one byte + ancillary data; briefly revert to blocking so
  // a momentarily full buffer cannot drop the fd pass.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  bool fd_sent = pool_fd.valid() && net::SendFd(fd, pool_fd.get()).ok();
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags);
  if (!fd_sent) {
    DropClient(home, fd);
  }
}

void Store::BumpGeneration(const ObjectId& id) {
  if (gen_table_ != nullptr) (void)gen_table_->Bump(id);
}

Result<alloc::Allocation> Store::AllocateWithEviction(Shard& owner,
                                                      uint64_t size) {
  const uint64_t arena_capacity = pool_alloc_->arena_capacity(owner.index);
  if (size > arena_capacity) {
    return Status::CapacityError(
        "object of " + std::to_string(size) +
        " bytes exceeds shard arena capacity " +
        std::to_string(arena_capacity) + " (store capacity " +
        std::to_string(options_.capacity) + ", " +
        std::to_string(shards_.size()) + " shards)");
  }
  while (true) {
    auto allocation = owner.arena->Allocate(size);
    if (allocation.ok()) return allocation;

    auto victims = owner.eviction.ChooseVictims(
        size,
        [this, &owner](const ObjectId& id) {
          owner.mutex.AssertHeld();  // called synchronously under the lock
          return IsEvictable(owner, id);
        });
    if (victims.empty()) {
      return Status::OutOfMemory(
          "shard arena full and no evictable objects for " +
          std::to_string(size) + " bytes");
    }
    bool freed_any = false;
    for (const ObjectId& victim : victims) {
      // Spill tier first: demote the victim to the shard's segment file
      // and keep its table entry (as kSpilled). A failed spill write
      // (disk full, I/O error) falls through to destructive eviction so
      // the create still succeeds.
      if (owner.spill.has_value()) {
        auto entry = owner.table.Lookup(victim);
        if (entry.ok() && entry->state == ObjectState::kSealed &&
            entry->local_refs == 0) {
          auto spilled_at = owner.spill->Append(
              victim, pool_base_ + entry->offset, entry->data_size,
              entry->metadata_size);
          if (spilled_at.ok() &&
              owner.table.MarkSpilled(victim, *spilled_at).ok()) {
            if (shared_index_ != nullptr) {
              // Peers must stop reading the stale pool offset; their
              // look-ups fall back to RPC, which restores on demand.
              MutexLock index_lock(index_mutex_);
              // mdos-check: allow-discard(objects the index never admitted produce KeyError here; the withdrawal only has to hold for indexed ones)
              (void)shared_index_->Remove(victim);
            }
            // Index withdrawal, then bump, then free: a mapped reader
            // mid-copy over the fabric re-checks the generation after
            // copying, so the bump must land before the bytes can be
            // reused by a later allocation.
            BumpGeneration(victim);
            MDOS_WARN_IF_ERROR(owner.arena->Free(entry->offset),
                               "freeing pool bytes of spilled victim");
            owner.eviction.Remove(victim);
            ++owner.spill_count;
            freed_any = true;
            continue;
          }
          if (spilled_at.ok()) {
            MDOS_WARN_IF_ERROR(owner.spill->Free(*spilled_at),
                               "releasing spill slot of aborted demotion");
          } else {
            MDOS_LOG_WARN << "spill of " << victim.Hex()
                          << " failed: " << spilled_at.status()
                          << "; evicting destructively";
          }
        }
      }
      {
        // Replicated objects may be demoted to disk (above) but never
        // destroyed: a peer's re-heal may depend on this being the last
        // surviving copy. With no working spill tier the victim is
        // simply not reclaimable.
        auto entry = owner.table.Lookup(victim);
        if (entry.ok() && entry->desired_copies > 1) continue;
      }
      auto removed = owner.table.Remove(victim);
      if (!removed.ok()) continue;  // raced with a new pin; skip
      if (shared_index_ != nullptr) {
        MutexLock index_lock(index_mutex_);
        // mdos-check: allow-discard(objects the index never admitted produce KeyError here; the withdrawal only has to hold for indexed ones)
        (void)shared_index_->Remove(victim);
      }
      // Same ordering as the spill path: bump before the bytes free.
      BumpGeneration(victim);
      MDOS_WARN_IF_ERROR(owner.arena->Free(removed->offset),
                         "freeing pool bytes of evicted victim");
      owner.eviction.Remove(victim);
      owner.remote_pins.erase(victim);
      ++owner.eviction_count;
      freed_any = true;
    }
    if (!freed_any) {
      return Status::OutOfMemory(
          "shard arena full: remaining victims are replicated objects "
          "that cannot be destroyed (need " + std::to_string(size) +
          " bytes)");
    }
  }
}

Result<ObjectEntry> Store::RestoreSpilled(Shard& owner,
                                          const ObjectId& id) {
  MDOS_ASSIGN_OR_RETURN(ObjectEntry entry, owner.table.Lookup(id));
  if (entry.state != ObjectState::kSpilled) return entry;
  if (!owner.spill.has_value()) {
    return Status::Invalid("object " + id.Hex() +
                           " is spilled but the spill tier is closed");
  }
  // Making room may spill other objects from this shard — appends to the
  // segment never disturb the live record we are about to read.
  MDOS_ASSIGN_OR_RETURN(alloc::Allocation allocation,
                        AllocateWithEviction(owner, entry.total_size()));
  Status read = owner.spill->ReadBack(id, entry.spill_offset,
                                      pool_base_ + allocation.offset);
  if (!read.ok()) {
    // The record is unreadable (CRC mismatch / I/O error): the object is
    // gone. Drop the entry so callers see a clean miss instead of
    // retrying a poisoned restore forever.
    MDOS_WARN_IF_ERROR(owner.arena->Free(allocation.offset),
                       "freeing pool bytes of failed restore");
    MDOS_WARN_IF_ERROR(owner.spill->Free(entry.spill_offset),
                       "freeing spill slot of failed restore");
    // mdos-check: allow-discard(removing the poisoned record; the entry was just looked up, and the error line below reports the restore failure)
    (void)owner.table.Remove(id, /*force=*/true);
    MDOS_LOG_ERROR << "restore of spilled object " << id.Hex()
                   << " failed: " << read;
    return read;
  }
  // mdos-check: allow-discard(the entry was looked up moments ago under this same lock; a concurrent force-remove is the only failure and leaves nothing to fix)
  (void)owner.table.MarkRestored(id, allocation.offset);
  MDOS_WARN_IF_ERROR(owner.spill->Free(entry.spill_offset),
                     "freeing spill slot after restore");
  owner.eviction.Add(id, entry.total_size());
  ++owner.restore_count;
  // The restore rebinds the id to a fresh pool offset: descriptors
  // stamped before the spill must not validate against the new bytes.
  BumpGeneration(id);
  if (shared_index_ != nullptr) {
    MutexLock index_lock(index_mutex_);
    // mdos-check: allow-discard(a full index is an expected steady state: readers fall back to the RPC path and the miss is visible in SharedIndexStats)
    (void)shared_index_->Insert(
        id, IndexedObject{allocation.offset, entry.data_size,
                          entry.metadata_size});
  }
  MaybeCompactSpill(owner);
  return owner.table.Lookup(id);
}

void Store::MaybeCompactSpill(Shard& owner) {
  if (!owner.spill.has_value() || !owner.spill->ShouldCompact()) return;
  Status compacted =
      owner.spill->Compact([&owner](const ObjectId& id, uint64_t offset) {
        owner.mutex.AssertHeld();  // called synchronously under the lock
        // mdos-check: allow-discard(an id deleted mid-compaction has no record to retarget; its old slot is reclaimed by the compaction itself)
        (void)owner.table.UpdateSpillOffset(id, offset);
      });
  if (!compacted.ok()) {
    MDOS_LOG_WARN << "spill compaction failed: " << compacted;
  }
}

bool Store::IsEvictable(const Shard& owner, const ObjectId& id) const {
  auto entry = owner.table.Lookup(id);
  if (!entry.ok()) return false;
  if (entry->state != ObjectState::kSealed) return false;
  if (entry->local_refs != 0) return false;
  auto pins = owner.remote_pins.find(id);
  if (pins != owner.remote_pins.end() && !pins->second.empty()) {
    return false;
  }
  if (external_pin_check_ && external_pin_check_(id)) return false;
  return true;
}

void Store::HandleCreate(Shard& home, ClientConn& conn,
                         uint64_t request_id,
                         std::span<const uint8_t> body,
                         Deadline op_deadline) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<CreateRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }

  CreateReply reply;
  reply.data_size = request->data_size;
  reply.metadata_size = request->metadata_size;

  Shard& owner = OwnerShard(request->id);

  // Local existence check.
  bool exists_locally;
  {
    MutexLock lock(owner.mutex);
    exists_locally = owner.table.Contains(request->id);
  }
  // Identifier-uniqueness probe across the distributed system (§IV-A2).
  // Deliberately outside any shard mutex: the peer answering our probe
  // may simultaneously probe us, and its answer needs a shard mutex.
  bool exists_remotely = false;
  if (!exists_locally && options_.check_global_uniqueness &&
      dist_hooks_ != nullptr) {
    // mdos-check: allow-blocking(DistHooks uniqueness probe, bounded by the client's end-to-end deadline; async probe is tracked in ROADMAP)
    exists_remotely = dist_hooks_->IdKnownRemotely(request->id,
                                                   op_deadline);
  }
  if (exists_locally || exists_remotely) {
    reply.status = Status::AlreadyExists(
        "object id " + request->id.Hex() +
        (exists_remotely ? " exists in a remote store" : " exists"));
    QueueReply(home, conn, MessageType::kCreateReply, request_id, reply);
    return;
  }

  {
    MutexLock lock(owner.mutex);
    // Re-check: another client may have created the id while the probe
    // was in flight.
    if (owner.table.Contains(request->id)) {
      reply.status =
          Status::AlreadyExists("object id " + request->id.Hex());
    } else {
      uint64_t total = request->data_size + request->metadata_size;
      if (total == 0) {
        reply.status = Status::Invalid("object must not be empty");
      } else {
        auto allocation = AllocateWithEviction(owner, total);
        if (!allocation.ok()) {
          reply.status = allocation.status();
        } else {
          ObjectEntry entry;
          entry.id = request->id;
          entry.offset = allocation->offset;
          entry.data_size = request->data_size;
          entry.metadata_size = request->metadata_size;
          entry.creator_fd = fd;
          // Replication intent is recorded at create time and acted on
          // at seal (the bytes exist only then). The per-object flag
          // bumps a non-replicating store to k=2 for this object.
          entry.desired_copies = std::max<uint32_t>(
              options_.replication_factor, request->replicate ? 2 : 1);
          entry.origin_node = node_id_;
          entry.copy_nodes = {node_id_};
          Status added = owner.table.AddCreated(entry);
          if (added.ok()) {
            reply.offset = allocation->offset;
          } else {
            MDOS_WARN_IF_ERROR(owner.arena->Free(allocation->offset),
                               "rolling back allocation of rejected create");
            reply.status = added;
          }
        }
      }
    }
  }
  QueueReply(home, conn, MessageType::kCreateReply, request_id, reply);
}

void Store::HandleSeal(Shard& home, ClientConn& conn, uint64_t request_id,
                       std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<SealRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  Shard& owner = OwnerShard(request->id);
  SealReply reply;
  Notification notice;
  notice.id = request->id;
  {
    MutexLock lock(owner.mutex);
    reply.status = owner.table.Seal(request->id);
    if (reply.status.ok()) {
      auto entry = owner.table.Lookup(request->id);
      if (entry.ok()) {
        owner.eviction.Add(request->id, entry->total_size());
        notice.data_size = entry->data_size;
        notice.metadata_size = entry->metadata_size;
        // Seal binds the id to its bytes: bump so descriptors from any
        // earlier incarnation of the id (delete + re-create) go stale.
        BumpGeneration(request->id);
        if (shared_index_ != nullptr) {
          // Publish into disaggregated memory so peers can find the
          // object without an RPC. Index-full is non-fatal: peers fall
          // back to the RPC lookup path.
          MutexLock index_lock(index_mutex_);
          // mdos-check: allow-discard(a full index is an expected steady state: readers fall back to the RPC path and the miss is visible in SharedIndexStats)
          (void)shared_index_->Insert(
              request->id, IndexedObject{entry->offset, entry->data_size,
                                         entry->metadata_size});
        }
      }
    }
  }
  QueueReply(home, conn, MessageType::kSealReply, request_id, reply);
  if (reply.status.ok()) {
    // Sealing makes the object available. The sealed notice is fanned
    // out BEFORE waking parked gets: a woken consumer may immediately
    // Delete the object, and its deleted notice must land behind the
    // sealed notice in every subscriber shard's FIFO mailbox — waking
    // first would let the two push races invert the lifecycle order.
    FanOutNotification(&home, notice);
    FanOutSealed(&home, request->id);
    // Replication fan-out last: the local seal is complete and the reply
    // queued, so replica RPC latency never sits in front of the client's
    // ack, and no shard mutex is held across the peer calls.
    ReplicateSealed(owner, request->id);
  }
}

void Store::HandleSubscribe(Shard& home, ClientConn& conn,
                            uint64_t request_id,
                            std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<SubscribeRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  if (!conn.subscriber) {
    home.subscriber_count.fetch_add(1, std::memory_order_relaxed);
  }
  conn.subscriber = true;
  conn.name = request->subscriber_name;
  SubscribeReply reply;
  QueueReply(home, conn, MessageType::kSubscribeReply, request_id, reply);
}

void Store::FanOutSealed(Shard* origin, const ObjectId& id) {
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    if (s == origin) {
      ServePendingGetsFor(*s, id);
      continue;
    }
    // Gated on the pre-announced parked-Get counter (see ResolveGets):
    // the seq_cst pairing guarantees a racing parker either is visible
    // here or re-checked the table after our seal committed, so skipping
    // an idle shard can never lose a wakeup. A stale non-zero just posts
    // a no-op task.
    if (s->parked_gets.load() == 0) continue;
    s->Post([this, s, id] { ServePendingGetsFor(*s, id); });
  }
}

void Store::FanOutNotification(Shard* origin, const Notification& notice) {
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    // Subscriptions racing a concurrent fan-out may miss it — a
    // subscription starts "now-ish", as in upstream Plasma — so a
    // relaxed emptiness check is enough to skip subscriber-less shards.
    if (s->subscriber_count.load(std::memory_order_relaxed) == 0) {
      continue;
    }
    if (s == origin) {
      DeliverNotification(*s, notice);
    } else {
      s->Post([this, s, notice] { DeliverNotification(*s, notice); });
    }
  }
}

void Store::DeliverNotification(Shard& shard, const Notification& notice) {
  // Queued, not sent: a burst of notifications to the same subscriber
  // leaves in one gather write at the end of the pass, and a dead
  // subscriber surfaces (and is dropped) at flush time. Subscriber fds
  // are snapshotted first because QueueReply may DropClient (egress cap)
  // and mutate the map mid-iteration.
  std::vector<int> subscribers;
  for (auto& [fd, conn] : shard.clients) {
    if (conn->subscriber) subscribers.push_back(fd);
  }
  for (int fd : subscribers) {
    auto it = shard.clients.find(fd);
    if (it == shard.clients.end()) continue;
    QueueReply(shard, *it->second, MessageType::kNotification,
               kNoRequestId, notice);
  }
}

void Store::HandleAbort(Shard& home, ClientConn& conn,
                        uint64_t request_id,
                        std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<AbortRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  Shard& owner = OwnerShard(request->id);
  AbortReply reply;
  {
    MutexLock lock(owner.mutex);
    auto entry = owner.table.Lookup(request->id);
    if (!entry.ok()) {
      reply.status = entry.status();
    } else if (entry->state != ObjectState::kCreated) {
      // Covers kSpilled too: a spilled entry's pool offset is stale (its
      // allocation was already freed at spill time), so force-removing
      // it here would double-free whatever lives there now.
      reply.status =
          Status::Sealed("cannot abort sealed object " + request->id.Hex());
    } else {
      auto removed = owner.table.Remove(request->id, /*force=*/true);
      if (removed.ok()) {
        MDOS_WARN_IF_ERROR(owner.arena->Free(removed->offset),
                           "freeing aborted object");
      }
      reply.status = removed.status();
    }
  }
  QueueReply(home, conn, MessageType::kAbortReply, request_id, reply);
}

std::optional<GetReplyEntry> Store::TryLocalGet(ClientConn& conn,
                                                const ObjectId& id) {
  Shard& owner = OwnerShard(id);
  std::optional<GetReplyEntry> out;
  {
    MutexLock lock(owner.mutex);
    auto entry = owner.table.Lookup(id);
    if (entry.ok() && entry->state == ObjectState::kSpilled) {
      // Transparent promotion from the disk tier: the client sees a
      // normal local hit, just slower. A failed restore reads as a miss.
      entry = RestoreSpilled(owner, id);
    }
    if (!entry.ok() || entry->state != ObjectState::kSealed) {
      return std::nullopt;
    }
    GetReplyEntry found;
    found.id = id;
    found.found = true;
    found.location = ObjectLocation::kLocal;
    found.offset = entry->offset;
    found.data_size = entry->data_size;
    found.metadata_size = entry->metadata_size;
    // mdos-check: allow-discard(the entry was verified sealed two lines up under this same lock; AddRef on it cannot fail a way that needs handling)
    (void)owner.table.AddRef(id);
    owner.eviction.Touch(id);
    out = found;
  }
  // Home-thread connection state; no lock needed.
  ++conn.local_pins[id];
  return out;
}

void Store::HandleGet(Shard& home, ClientConn& conn, uint64_t request_id,
                      std::span<const uint8_t> body, Deadline op_deadline,
                      std::vector<PendingGet>* batch_gets) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<GetRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }

  PendingGet pending;
  pending.fd = fd;
  pending.request_id = request_id;
  pending.op_deadline = op_deadline;
  pending.order = request->ids;
  pending.timeout_ms = request->timeout_ms;
  pending.pinned = request->pinned;
  pending.fallback = request->fallback;
  if (request->fallback) {
    // The client's mapped copy failed generation validation and it is
    // refetching through the pinned ladder rung.
    home.mapped_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }

  std::unordered_set<ObjectId> missing_seen;
  for (const ObjectId& id : request->ids) {
    if (pending.ready.count(id) != 0 || missing_seen.count(id) != 0) {
      continue;  // duplicate id in request: one entry suffices
    }
    auto local = TryLocalGet(conn, id);
    if (local.has_value()) {
      pending.ready.emplace(id, *local);
    } else {
      missing_seen.insert(id);
      pending.missing.push_back(id);
    }
  }
  batch_gets->push_back(std::move(pending));
}

bool Store::AdoptRemoteObject(Shard& home, ClientConn& conn,
                              PendingGet& pending, const ObjectId& id,
                              const RemoteObjectLocation& loc,
                              bool count_hit, Deadline deadline) {
  // Mapped data plane: a generation-stamped location is handed out as an
  // unpinned descriptor — zero RPCs to the home store. The client copies
  // through its cached region attachment and re-checks the generation;
  // a get that forced the pinned rung (fallback, bench baseline) takes
  // the classic path below.
  const bool mapped = options_.mapped_remote_reads && !pending.pinned &&
                      loc.gen_region != UINT32_MAX;
  if (mapped) {
    auto& ref = conn.remote_refs[id];
    ref.loc = loc;
    ++ref.mapped;
    home.mapped_reads.fetch_add(1, std::memory_order_relaxed);
    home.mapped_bytes.fetch_add(loc.data_size + loc.metadata_size,
                                std::memory_order_relaxed);
  } else if (options_.pin_remote_objects && dist_hooks_ != nullptr) {
    // Pin before handing the location out: a failed pin means the
    // location is stale (lost DeleteNotice, restarted peer) and must not
    // reach the client — it would read dangling pool offsets.
    // mdos-check: allow-blocking(DistHooks pin RPC, deadline-bounded; correctness requires the pin to land before the location reaches the client)
    Status pinned = dist_hooks_->PinRemote(id, loc, deadline);
    if (!pinned.ok()) return false;
    auto& ref = conn.remote_refs[id];
    ref.loc = loc;
    ++ref.pinned;
  }
  GetReplyEntry entry;
  entry.id = id;
  entry.found = true;
  entry.location = ObjectLocation::kRemote;
  entry.offset = loc.offset;
  entry.data_size = loc.data_size;
  entry.metadata_size = loc.metadata_size;
  entry.home_node = loc.home_node;
  entry.home_region = loc.home_region;
  entry.mapped = mapped;
  entry.generation = loc.generation;
  entry.gen_slot = loc.gen_slot;
  entry.gen_region = loc.gen_region;
  entry.gen_epoch = loc.gen_epoch;
  pending.ready.emplace(id, entry);
  if (count_hit) {
    // Hits are only counted where the look-up itself was counted, so
    // stats never report more hits than look-ups.
    remote_lookup_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool Store::AdoptRemoteObjectWithRetry(Shard& home, ClientConn& conn,
                                       PendingGet& pending,
                                       const ObjectId& id,
                                       const RemoteObjectLocation& loc,
                                       bool count_hit, Deadline deadline) {
  if (AdoptRemoteObject(home, conn, pending, id, loc, count_hit,
                        deadline)) {
    return true;
  }
  // Stale location: the dist layer invalidated its cache entry when the
  // pin failed, so this lookup bypasses the cache and asks the peers
  // again. One retry only — a second stale answer means the object is
  // really gone.
  auto retried =
      BatchedRemoteLookup({id}, /*count_lookups=*/false, deadline);
  auto it = retried.find(id);
  if (it == retried.end()) return false;
  return AdoptRemoteObject(home, conn, pending, id, it->second,
                           /*count_hit=*/false, deadline);
}

std::unordered_map<ObjectId, RemoteObjectLocation>
Store::BatchedRemoteLookup(const std::vector<ObjectId>& ids,
                           bool count_lookups, Deadline deadline) {
  std::unordered_map<ObjectId, RemoteObjectLocation> resolved;
  if (dist_hooks_ == nullptr || ids.empty()) return resolved;
  std::vector<ObjectId> unknown;
  std::unordered_set<ObjectId> seen;
  for (const ObjectId& id : ids) {
    if (seen.insert(id).second) unknown.push_back(id);
  }
  // RPC outside any shard mutex; the paper's local store performs the
  // look-up synchronously on the client's behalf.
  // mdos-check: allow-blocking(DistHooks batched lookup RPC, deadline-bounded and hedged; the paper's design point — async resolve is tracked in ROADMAP)
  auto locations = dist_hooks_->LookupRemote(unknown, deadline);
  if (count_lookups) {
    remote_lookups_.fetch_add(unknown.size(), std::memory_order_relaxed);
  }
  for (size_t i = 0; i < unknown.size() && i < locations.size(); ++i) {
    if (locations[i].has_value()) {
      resolved.emplace(unknown[i], *locations[i]);
    }
  }
  return resolved;
}

void Store::ResolveGets(Shard& home, ClientConn& conn,
                        std::vector<PendingGet>& gets) {
  if (gets.empty()) return;

  // One remote look-up for every id unknown anywhere in the batch: a
  // pipelining client that issued N Gets for remote objects pays one RPC
  // round instead of N. The shared lookup runs under the LOOSEST
  // deadline in the batch (any get still inside its budget keeps the
  // RPC alive); each get's own pin below uses its own deadline.
  std::vector<ObjectId> unknown;
  Deadline batch_deadline = gets.front().op_deadline;
  for (const PendingGet& pending : gets) {
    unknown.insert(unknown.end(), pending.missing.begin(),
                   pending.missing.end());
    if (pending.op_deadline.infinite() ||
        (!batch_deadline.infinite() &&
         pending.op_deadline.when_ns() > batch_deadline.when_ns())) {
      batch_deadline = pending.op_deadline;
    }
  }
  auto resolved =
      BatchedRemoteLookup(unknown, /*count_lookups=*/true, batch_deadline);

  const int fd = conn.fd.get();
  for (PendingGet& pending : gets) {
    // A failed reply for an earlier get in this batch drops the client
    // (and its conn entry); every get in the batch is from that client,
    // so stop.
    if (home.clients.find(fd) == home.clients.end()) return;
    // Pre-announce a potential park BEFORE the final local re-check
    // (seq_cst). A concurrent sealer on another shard either observes
    // this counter in FanOutSealed and posts the wakeup, or its table
    // commit precedes our re-check (both sides bracket the owner shard
    // mutex), in which case the re-check finds the object — so gating
    // the fan-out on the counter can never strand a parked get.
    bool announced = false;
    if (!pending.missing.empty() && pending.timeout_ms != 0) {
      home.parked_gets.fetch_add(1);
      announced = true;
    }
    for (const ObjectId& id : pending.missing) {
      auto it = resolved.find(id);
      if (it != resolved.end() &&
          AdoptRemoteObjectWithRetry(home, conn, pending, id, it->second,
                                     /*count_hit=*/true,
                                     pending.op_deadline)) {
        continue;
      }
      // Re-run the local pass: a later frame of the same batch (or a
      // concurrent client on any shard) may have sealed the object after
      // this get's first look — parking it would miss an available
      // object.
      auto local = TryLocalGet(conn, id);
      if (local.has_value()) {
        pending.ready.emplace(id, *local);
      } else {
        pending.waiting.insert(id);
      }
    }
    pending.missing.clear();
    if (pending.waiting.empty() || pending.timeout_ms == 0) {
      if (announced) {
        home.parked_gets.fetch_sub(1, std::memory_order_relaxed);
      }
      ReplyPendingGet(home, pending);
      continue;
    }
    // The pre-announcement above already counted this park. A finite
    // end-to-end deadline clamps the park: the reply (reporting whatever
    // was found) leaves no later than the operation's budget, so a
    // deadline-carrying client never waits out a longer get timeout.
    pending.deadline_ns =
        MonotonicNanos() +
        static_cast<int64_t>(pending.timeout_ms) * 1000000;
    if (!pending.op_deadline.infinite()) {
      pending.deadline_ns =
          std::min(pending.deadline_ns, pending.op_deadline.when_ns());
    }
    home.pending_gets.push_back(std::move(pending));
  }
}

void Store::ReplyPendingGet(Shard& shard, PendingGet& pending) {
  auto it = shard.clients.find(pending.fd);
  if (it == shard.clients.end()) return;
  GetReply reply;
  for (const ObjectId& id : pending.order) {
    auto ready = pending.ready.find(id);
    if (ready != pending.ready.end()) {
      reply.entries.push_back(ready->second);
    } else {
      GetReplyEntry missing;
      missing.id = id;
      missing.found = false;
      reply.entries.push_back(missing);
    }
  }
  QueueReply(shard, *it->second, MessageType::kGetReply,
             pending.request_id, reply);
}

void Store::ServePendingGetsFor(Shard& shard, const ObjectId& id) {
  // Completed gets are moved out of the list before any reply is sent:
  // a failed send inside ReplyPendingGet drops the client, which prunes
  // pending_gets and would invalidate iterators held here.
  std::vector<PendingGet> completed;
  for (auto it = shard.pending_gets.begin();
       it != shard.pending_gets.end();) {
    PendingGet& pending = *it;
    if (pending.waiting.erase(id) > 0) {
      auto conn_it = shard.clients.find(pending.fd);
      if (conn_it != shard.clients.end()) {
        auto local = TryLocalGet(*conn_it->second, id);
        if (local.has_value()) {
          pending.ready.emplace(id, *local);
        }
      }
    }
    if (pending.waiting.empty()) {
      completed.push_back(std::move(pending));
      it = shard.pending_gets.erase(it);
      shard.parked_gets.fetch_sub(1, std::memory_order_relaxed);
    } else {
      ++it;
    }
  }
  for (PendingGet& pending : completed) {
    ReplyPendingGet(shard, pending);
  }
}

int Store::FlushExpiredPendingGets(Shard& shard) {
  if (shard.pending_gets.empty()) return -1;
  int64_t now = MonotonicNanos();
  int64_t next_deadline = INT64_MAX;
  std::vector<PendingGet> expired;
  for (auto it = shard.pending_gets.begin();
       it != shard.pending_gets.end();) {
    if (it->deadline_ns > now) {
      next_deadline = std::min(next_deadline, it->deadline_ns);
      ++it;
      continue;
    }
    expired.push_back(std::move(*it));
    it = shard.pending_gets.erase(it);
    shard.parked_gets.fetch_sub(1, std::memory_order_relaxed);
  }

  if (!expired.empty()) {
    // Deadline reached: one final remote look-up for the stragglers (they
    // may have been sealed on a peer while we waited), batched across all
    // expired gets, then reply.
    std::vector<ObjectId> stragglers;
    Deadline straggler_deadline = expired.front().op_deadline;
    for (const PendingGet& pending : expired) {
      stragglers.insert(stragglers.end(), pending.waiting.begin(),
                        pending.waiting.end());
      if (pending.op_deadline.infinite() ||
          (!straggler_deadline.infinite() &&
           pending.op_deadline.when_ns() > straggler_deadline.when_ns())) {
        straggler_deadline = pending.op_deadline;
      }
    }
    auto resolved = BatchedRemoteLookup(stragglers, /*count_lookups=*/false,
                                        straggler_deadline);
    for (PendingGet& pending : expired) {
      auto conn_it = shard.clients.find(pending.fd);
      for (auto id_it = pending.waiting.begin();
           id_it != pending.waiting.end();) {
        if (conn_it != shard.clients.end()) {
          // Final local retry. This mostly matters for the spill tier:
          // a restore that failed with kOutOfMemory while the pool was
          // pinned solid (the object existed all along — Contains said
          // so) may succeed now that pins have dropped during the wait.
          auto local = TryLocalGet(*conn_it->second, *id_it);
          if (local.has_value()) {
            pending.ready.emplace(*id_it, *local);
            id_it = pending.waiting.erase(id_it);
            continue;
          }
        }
        auto hit = resolved.find(*id_it);
        if (hit == resolved.end() || conn_it == shard.clients.end() ||
            !AdoptRemoteObjectWithRetry(shard, *conn_it->second, pending,
                                        *id_it, hit->second,
                                        /*count_hit=*/false,
                                        pending.op_deadline)) {
          ++id_it;
          continue;
        }
        id_it = pending.waiting.erase(id_it);
      }
      ReplyPendingGet(shard, pending);
    }
  }

  if (next_deadline == INT64_MAX) return -1;
  int64_t ms = (next_deadline - now + 999999) / 1000000;
  return static_cast<int>(std::max<int64_t>(ms, 1));
}

void Store::HandleRelease(Shard& home, ClientConn& conn,
                          uint64_t request_id,
                          std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<ReleaseRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  ReleaseReply reply;
  std::optional<RemoteObjectLocation> remote_unpin;

  auto local_it = conn.local_pins.find(request->id);
  if (local_it != conn.local_pins.end()) {
    Shard& owner = OwnerShard(request->id);
    {
      MutexLock lock(owner.mutex);
      auto refs = owner.table.ReleaseRef(request->id);
      reply.status = refs.status();
    }
    if (--local_it->second == 0) {
      conn.local_pins.erase(local_it);
    }
  } else {
    auto remote_it = conn.remote_refs.find(request->id);
    if (remote_it != conn.remote_refs.end()) {
      auto& ref = remote_it->second;
      if (ref.mapped > 0) {
        // Mapped descriptors hold no pin at the home store; nothing to
        // send. Consumed before pinned refs so a client's transparent
        // fallback (old mapped ref + fresh pinned ref on the same id)
        // retires the descriptor and keeps the pin it still needs.
        --ref.mapped;
      } else if (ref.pinned > 0) {
        --ref.pinned;
        remote_unpin = ref.loc;
      }
      if (ref.mapped == 0 && ref.pinned == 0) {
        conn.remote_refs.erase(remote_it);
      }
    } else {
      reply.status = Status::KeyError("release: object " +
                                      request->id.Hex() + " not held");
    }
  }
  if (remote_unpin.has_value() && dist_hooks_ != nullptr &&
      options_.pin_remote_objects) {
    // mdos-check: allow-blocking(DistHooks peer RPC, deadline-bounded; making the unpin path async is tracked in ROADMAP)
    dist_hooks_->UnpinRemote(request->id, *remote_unpin);
  }
  QueueReply(home, conn, MessageType::kReleaseReply, request_id, reply);
}

void Store::HandleContains(Shard& home, ClientConn& conn,
                           uint64_t request_id,
                           std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<ContainsRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  Shard& owner = OwnerShard(request->id);
  ContainsReply reply;
  {
    MutexLock lock(owner.mutex);
    reply.contains = owner.table.ContainsSealed(request->id);
  }
  QueueReply(home, conn, MessageType::kContainsReply, request_id, reply);
}

void Store::HandleDelete(Shard& home, ClientConn& conn,
                         uint64_t request_id,
                         std::span<const uint8_t> body) {
  int fd = conn.fd.get();
  auto request = DecodeMessage<DeleteRequest>(body.data(), body.size());
  if (!request.ok()) {
    DropClient(home, fd);
    return;
  }
  Shard& owner = OwnerShard(request->id);
  DeleteReply reply;
  bool deleted = false;
  // Replica holders to notify once the local delete commits (origin
  // deletes propagate; a replica's local delete never touches peers).
  std::vector<uint32_t> replica_holders;
  {
    MutexLock lock(owner.mutex);
    auto pins = owner.remote_pins.find(request->id);
    if (pins != owner.remote_pins.end() && !pins->second.empty()) {
      reply.status = Status::Invalid("delete: object " +
                                     request->id.Hex() +
                                     " is pinned by remote clients");
    } else {
      auto removed = owner.table.Remove(request->id);
      reply.status = removed.status();
      if (removed.ok()) {
        if (shared_index_ != nullptr) {
          MutexLock index_lock(index_mutex_);
          // mdos-check: allow-discard(objects the index never admitted produce KeyError here; the withdrawal only has to hold for indexed ones)
          (void)shared_index_->Remove(request->id);
        }
        // Index withdrawal, then bump, then free (mapped-read seqlock
        // write order — see AllocateWithEviction).
        BumpGeneration(request->id);
        if (removed->state == ObjectState::kSpilled) {
          if (owner.spill.has_value()) {
            MDOS_WARN_IF_ERROR(owner.spill->Free(removed->spill_offset),
                               "freeing spill slot of deleted object");
            MaybeCompactSpill(owner);
          }
        } else {
          MDOS_WARN_IF_ERROR(owner.arena->Free(removed->offset),
                             "freeing pool bytes of deleted object");
        }
        owner.eviction.Remove(request->id);
        owner.remote_pins.erase(request->id);
        deleted = true;
        if (removed->origin_node == node_id_) {
          for (uint32_t holder : removed->copy_nodes) {
            if (holder != node_id_) replica_holders.push_back(holder);
          }
        }
      }
    }
  }
  if (deleted) {
    if (dist_hooks_ != nullptr) {
      if (!replica_holders.empty()) {
        // mdos-check: allow-blocking(DistHooks replica-drop RPC fan-out, deadline-bounded; best-effort cleanup)
        dist_hooks_->DropReplicas(request->id, replica_holders);
      }
      // mdos-check: allow-blocking(DistHooks delete notice, deadline-bounded; peers self-heal via stale-pin detection if it is lost)
      dist_hooks_->NotifyDeleted(request->id);
    }
    Notification notice;
    notice.id = request->id;
    notice.deleted = true;
    FanOutNotification(&home, notice);
  }
  QueueReply(home, conn, MessageType::kDeleteReply, request_id, reply);
}

void Store::HandleList(Shard& home, ClientConn& conn,
                       uint64_t request_id) {
  // Cross-shard scan: one shard lock at a time, never two (lock-order
  // safety), merged into one reply.
  ListReply reply;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    auto objects = shard->table.List();
    reply.objects.insert(reply.objects.end(), objects.begin(),
                         objects.end());
  }
  QueueReply(home, conn, MessageType::kListReply, request_id, reply);
}

void Store::HandleStats(Shard& home, ClientConn& conn,
                        uint64_t request_id) {
  StatsReply reply;
  reply.stats = stats();
  QueueReply(home, conn, MessageType::kStatsReply, request_id, reply);
}

void Store::HandleShardStats(Shard& home, ClientConn& conn,
                             uint64_t request_id) {
  ShardStatsReply reply;
  reply.shards = shard_stats();
  QueueReply(home, conn, MessageType::kShardStatsReply, request_id,
             reply);
}

void Store::HandlePeerStats(Shard& home, ClientConn& conn,
                            uint64_t request_id) {
  PeerStatsReply reply;
  reply.peers = peer_stats();
  QueueReply(home, conn, MessageType::kPeerStatsReply, request_id, reply);
}

// ---- thread-safe peer surface ---------------------------------------------

std::vector<std::optional<RemoteObjectLocation>> Store::LookupManyForPeer(
    const std::vector<ObjectId>& ids) {
  std::vector<std::optional<RemoteObjectLocation>> out(ids.size());
  // Group by owning shard so a batched peer lookup takes each shard
  // mutex once instead of once per id.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    by_shard[ShardIndexOf(ids[i])].push_back(i);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& owner = *shards_[s];
    MutexLock lock(owner.mutex);
    // Objects already reported from this shard are ref-pinned until the
    // batch leaves the shard: a later id's restore re-runs eviction, and
    // without the pin it could re-spill an earlier hit and invalidate
    // the offset we just put in the reply.
    std::vector<ObjectId> reported;
    for (size_t i : by_shard[s]) {
      auto entry = owner.table.Lookup(ids[i]);
      if (entry.ok() && entry->state == ObjectState::kSpilled) {
        // Spilled objects are present as far as peers are concerned:
        // restore into the pool so the returned offset is readable over
        // the fabric. (Same transparency rule as a local Get.)
        entry = RestoreSpilled(owner, ids[i]);
      }
      if (!entry.ok() || entry->state != ObjectState::kSealed) continue;
      RemoteObjectLocation loc;
      loc.home_node = node_id_;
      loc.home_region = pool_region_;
      loc.offset = entry->offset;
      loc.data_size = entry->data_size;
      loc.metadata_size = entry->metadata_size;
      if (options_.mapped_remote_reads && gen_table_ != nullptr) {
        // Stamp the descriptor with the current generation. Sampled
        // under the owner mutex, so it is consistent with the offset
        // above: any destructive transition after this point bumps the
        // slot, and the reader's post-copy re-check catches it.
        loc.generation = gen_table_->Read(ids[i]);
        loc.gen_slot = gen_table_->SlotFor(ids[i]);
        loc.gen_region = gen_region_;
        loc.gen_epoch = gen_table_->epoch();
      }
      out[i] = loc;
      // mdos-check: allow-discard(momentary ref under the owner lock so the entry survives while the descriptor fields are copied; paired release below)
      (void)owner.table.AddRef(ids[i]);
      reported.push_back(ids[i]);
    }
    for (const ObjectId& id : reported) {
      // mdos-check: allow-discard(releasing the momentary ref taken above; the entries were present under this same lock)
      (void)owner.table.ReleaseRef(id);
    }
  }
  return out;
}

bool Store::ContainsId(const ObjectId& id) {
  Shard& owner = OwnerShard(id);
  MutexLock lock(owner.mutex);
  return owner.table.Contains(id);
}

Status Store::PinForPeer(const ObjectId& id, uint32_t peer_node) {
  Shard& owner = OwnerShard(id);
  MutexLock lock(owner.mutex);
  auto entry = owner.table.Lookup(id);
  if (entry.ok() && entry->state == ObjectState::kSpilled) {
    // A pin promises the peer stable pool residency; promote first.
    entry = RestoreSpilled(owner, id);
  }
  if (!entry.ok() || entry->state != ObjectState::kSealed) {
    return Status::KeyError("pin: object " + id.Hex() + " not sealed here");
  }
  ++owner.remote_pins[id][peer_node];
  return Status::OK();
}

Status Store::UnpinForPeer(const ObjectId& id, uint32_t peer_node) {
  Shard& owner = OwnerShard(id);
  MutexLock lock(owner.mutex);
  auto it = owner.remote_pins.find(id);
  if (it == owner.remote_pins.end()) {
    return Status::KeyError("unpin: object " + id.Hex() + " not pinned");
  }
  auto peer_it = it->second.find(peer_node);
  if (peer_it == it->second.end()) {
    return Status::KeyError("unpin: no pins from node " +
                            std::to_string(peer_node));
  }
  if (--peer_it->second == 0) {
    it->second.erase(peer_it);
  }
  if (it->second.empty()) {
    owner.remote_pins.erase(it);
  }
  return Status::OK();
}

uint32_t Store::RemotePins(const ObjectId& id) {
  Shard& owner = OwnerShard(id);
  MutexLock lock(owner.mutex);
  auto it = owner.remote_pins.find(id);
  if (it == owner.remote_pins.end()) return 0;
  uint32_t total = 0;
  for (const auto& [node, count] : it->second) {
    (void)node;
    total += count;
  }
  return total;
}

uint64_t Store::ReleasePinsForPeer(uint32_t peer_node) {
  uint64_t released = 0;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    for (auto it = shard->remote_pins.begin();
         it != shard->remote_pins.end();) {
      auto peer_it = it->second.find(peer_node);
      if (peer_it != it->second.end()) {
        released += peer_it->second;
        it->second.erase(peer_it);
      }
      if (it->second.empty()) {
        it = shard->remote_pins.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (released > 0) {
    MDOS_LOG_INFO << "store " << options_.name << ": released "
                  << released << " pins held by dead peer " << peer_node;
  }
  return released;
}

// ---- k-way replication ------------------------------------------------------

namespace {

// Inserts `node` into `nodes` if absent (copy sets are small — a handful
// of node ids — so linear scan beats a set).
void MergeCopyNode(std::vector<uint32_t>& nodes, uint32_t node) {
  if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
    nodes.push_back(node);
  }
}

}  // namespace

void Store::ReplicateSealed(Shard& owner, const ObjectId& id) {
  if (dist_hooks_ == nullptr) return;
  std::vector<uint8_t> bytes;
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  uint32_t desired = 0;
  uint32_t origin = 0;
  std::vector<uint32_t> holders;
  {
    MutexLock lock(owner.mutex);
    auto entry = owner.table.Lookup(id);
    if (!entry.ok()) return;
    if (entry->desired_copies <= 1) return;
    if (entry->copy_nodes.size() >= entry->desired_copies) return;
    if (entry->state == ObjectState::kSpilled) {
      auto restored = RestoreSpilled(owner, id);
      if (!restored.ok()) return;
      entry = restored;
    }
    if (entry->state != ObjectState::kSealed) return;
    // Snapshot the bytes under the mutex: the pool offset can be rebound
    // (evict, spill, delete + re-create) the moment the lock drops, and
    // the replicate RPCs below must not run under it.
    bytes.assign(pool_base_ + entry->offset,
                 pool_base_ + entry->offset + entry->total_size());
    data_size = entry->data_size;
    metadata_size = entry->metadata_size;
    desired = entry->desired_copies;
    origin = entry->origin_node;
    holders = entry->copy_nodes;
  }
  uint32_t wanted = desired - static_cast<uint32_t>(holders.size());
  // mdos-check: allow-blocking(DistHooks replication fan-out RPC, deadline-bounded; runs on seal, outside any shard mutex)
  std::vector<uint32_t> accepted = dist_hooks_->ReplicateObject(
      id, bytes.data(), data_size, metadata_size, wanted, holders, origin,
      desired);
  if (accepted.empty()) return;
  MutexLock lock(owner.mutex);
  auto entry = owner.table.Lookup(id);
  // Deleted or re-created (different origin) while the RPCs were in
  // flight: leave the new record alone. The stray remote copies are
  // reclaimed by the origin-delete fan-out or a later re-heal round.
  if (!entry.ok() || entry->origin_node != origin) return;
  std::vector<uint32_t> merged = entry->copy_nodes;
  for (uint32_t node : accepted) MergeCopyNode(merged, node);
  // mdos-check: allow-discard(the entry was verified live two lines up under this lock; a concurrent force-remove just makes the copy-set update moot)
  (void)owner.table.SetReplication(id, entry->desired_copies,
                                   entry->origin_node, std::move(merged));
}

Status Store::AcceptReplica(const ObjectId& id, uint32_t from_node,
                            uint32_t origin_node, uint32_t desired_copies,
                            const std::vector<uint32_t>& copy_nodes,
                            const uint8_t* data, uint64_t data_size,
                            uint64_t metadata_size) {
  (void)from_node;
  const uint64_t total = data_size + metadata_size;
  if (total == 0) return Status::Invalid("replica must not be empty");
  Shard& owner = OwnerShard(id);
  Notification notice;
  notice.id = id;
  notice.data_size = data_size;
  notice.metadata_size = metadata_size;
  {
    MutexLock lock(owner.mutex);
    auto existing = owner.table.Lookup(id);
    if (existing.ok()) {
      if (existing->state == ObjectState::kCreated) {
        // A local client is mid-create on the same id; the pusher treats
        // this as a miss and picks another target.
        return Status::AlreadyExists("replica target id " + id.Hex() +
                                     " is being created locally");
      }
      // Idempotent re-push (retry, or a re-heal round racing the
      // original fan-out): merge the copy sets, keep the bytes we have.
      std::vector<uint32_t> merged = existing->copy_nodes;
      for (uint32_t node : copy_nodes) MergeCopyNode(merged, node);
      MergeCopyNode(merged, node_id_);
      return owner.table.SetReplication(id, desired_copies, origin_node,
                                        std::move(merged));
    }
    MDOS_ASSIGN_OR_RETURN(alloc::Allocation allocation,
                          AllocateWithEviction(owner, total));
    std::memcpy(pool_base_ + allocation.offset, data, total);
    ObjectEntry entry;
    entry.id = id;
    entry.offset = allocation.offset;
    entry.data_size = data_size;
    entry.metadata_size = metadata_size;
    entry.desired_copies = desired_copies;
    entry.origin_node = origin_node;
    entry.copy_nodes = copy_nodes;
    MergeCopyNode(entry.copy_nodes, node_id_);
    Status added = owner.table.AddCreated(entry);
    if (!added.ok()) {
      MDOS_WARN_IF_ERROR(owner.arena->Free(allocation.offset),
                         "rolling back allocation of rejected replica");
      return added;
    }
    Status sealed = owner.table.Seal(id);
    if (!sealed.ok()) {
      // mdos-check: allow-discard(rollback of the record added four lines up; the seal failure itself is what propagates)
      (void)owner.table.Remove(id, /*force=*/true);
      MDOS_WARN_IF_ERROR(owner.arena->Free(allocation.offset),
                         "rolling back allocation of unsealable replica");
      return sealed;
    }
    owner.eviction.Add(id, total);
    // Same write-side order as a local Seal: bind the id to its bytes,
    // then publish into the shared index for zero-RPC peer lookups.
    BumpGeneration(id);
    if (shared_index_ != nullptr) {
      MutexLock index_lock(index_mutex_);
      // mdos-check: allow-discard(a full index is an expected steady state: readers fall back to the RPC path and the miss is visible in SharedIndexStats)
      (void)shared_index_->Insert(
          id, IndexedObject{allocation.offset, data_size, metadata_size});
    }
  }
  // A replica arrival is a seal as far as local waiters are concerned:
  // wake subscribers and parked Gets. Null origin — the RPC thread is
  // not a shard, so every shard gets a posted task.
  FanOutNotification(nullptr, notice);
  FanOutSealed(nullptr, id);
  return Status::OK();
}

Status Store::DropReplicaLocal(const ObjectId& id, uint32_t from_node) {
  Shard& owner = OwnerShard(id);
  Notification notice;
  notice.id = id;
  notice.deleted = true;
  {
    MutexLock lock(owner.mutex);
    auto entry = owner.table.Lookup(id);
    // Already gone — the drop is idempotent.
    if (!entry.ok()) return Status::OK();
    if (entry->origin_node != from_node || entry->origin_node == node_id_) {
      return Status::Invalid("replica drop: object " + id.Hex() +
                             " is not a replica of node " +
                             std::to_string(from_node));
    }
    auto removed = owner.table.Remove(id);
    if (!removed.ok()) return removed.status();
    if (shared_index_ != nullptr) {
      MutexLock index_lock(index_mutex_);
      // mdos-check: allow-discard(objects the index never admitted produce KeyError here; the withdrawal only has to hold for indexed ones)
      (void)shared_index_->Remove(id);
    }
    // Index withdrawal, then bump, then free (mapped-read seqlock write
    // order — see AllocateWithEviction).
    BumpGeneration(id);
    if (removed->state == ObjectState::kSpilled) {
      if (owner.spill.has_value()) {
        MDOS_WARN_IF_ERROR(owner.spill->Free(removed->spill_offset),
                           "freeing spill slot of dropped replica");
        MaybeCompactSpill(owner);
      }
    } else {
      MDOS_WARN_IF_ERROR(owner.arena->Free(removed->offset),
                         "freeing pool bytes of dropped replica");
    }
    owner.eviction.Remove(id);
    owner.remote_pins.erase(id);
  }
  FanOutNotification(nullptr, notice);
  return Status::OK();
}

void Store::RequestReheal(uint32_t dead_node) {
  {
    MutexLock lock(reheal_mutex_);
    if (!reheal_running_) return;
    // Dedup: a node death reported by several peers (or by both the
    // health monitor and a failed RPC) needs exactly one re-heal round.
    // A round already RUNNING for the node is not deduped against — it
    // may have sampled the copy sets before the report arrived.
    for (uint32_t queued : reheal_queue_) {
      if (queued == dead_node) {
        reheal_deduped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    // Bound: a pathological flood of death reports (chaos harness,
    // flapping partition detector) must not grow the queue without
    // limit. Dropped entries are visible in StoreStats::reheal_dropped;
    // a later health-monitor round re-reports nodes that stay dead.
    if (reheal_queue_.size() >= kMaxRehealQueue) {
      reheal_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    reheal_queue_.push_back(dead_node);
    ++reheal_inflight_;
  }
  reheal_cv_.NotifyOne();
}

uint64_t Store::PendingReheals() {
  MutexLock lock(reheal_mutex_);
  return reheal_inflight_;
}

void Store::RehealLoop() {
  // Sweep cadence: only when degraded objects exist, backing off
  // (doubling, capped) while sweeps make no progress so a genuinely
  // unreachable target is not hammered every wake-up.
  int64_t sweep_backoff_ms = 200;
  int64_t next_sweep_ns = 0;
  for (;;) {
    uint32_t dead = 0;
    bool have_dead = false;
    {
      MutexLock lock(reheal_mutex_);
      reheal_cv_.WaitFor(reheal_mutex_, std::chrono::milliseconds(200),
                         [this]() {
                           reheal_mutex_.AssertHeld();
                           return !reheal_running_ ||
                                  !reheal_queue_.empty();
                         });
      if (!reheal_running_) return;
      if (!reheal_queue_.empty()) {
        dead = reheal_queue_.front();
        reheal_queue_.erase(reheal_queue_.begin());
        have_dead = true;
      }
    }
    if (have_dead) {
      RehealForDeadNode(dead);
      {
        MutexLock lock(reheal_mutex_);
        --reheal_inflight_;
      }
      continue;
    }
    // Idle: retry any copies whose earlier push failed.
    bool degraded = false;
    for (auto& shard : shards_) {
      MutexLock lock(shard->mutex);
      if (shard->table.under_replicated() > 0) {
        degraded = true;
        break;
      }
    }
    if (!degraded) {
      sweep_backoff_ms = 200;
      continue;
    }
    const int64_t now_ns = MonotonicNanos();
    if (now_ns < next_sweep_ns) continue;
    if (RehealSweep() > 0) {
      sweep_backoff_ms = 200;
    } else {
      sweep_backoff_ms = std::min<int64_t>(sweep_backoff_ms * 2, 5000);
    }
    next_sweep_ns = MonotonicNanos() + sweep_backoff_ms * 1000000;
  }
}

uint64_t Store::RehealSweep() {
  uint64_t healed_copies = 0;
  uint64_t healed_bytes = 0;
  for (auto& shard : shards_) {
    Shard& owner = *shard;
    std::vector<ObjectId> to_heal;
    {
      MutexLock lock(owner.mutex);
      for (const ObjectId& id : owner.table.CollectUnderReplicated()) {
        auto entry = owner.table.Lookup(id);
        if (!entry.ok() || entry->copy_nodes.empty()) continue;
        // Same deterministic healer election as the death path: the
        // lowest believed holder pushes, so concurrent sweeps on
        // different holders don't double-replicate.
        uint32_t healer = *std::min_element(entry->copy_nodes.begin(),
                                            entry->copy_nodes.end());
        if (healer == node_id_) to_heal.push_back(id);
      }
    }
    for (const ObjectId& id : to_heal) {
      size_t before = 0;
      uint64_t size = 0;
      {
        MutexLock lock(owner.mutex);
        auto entry = owner.table.Lookup(id);
        if (!entry.ok()) continue;
        before = entry->copy_nodes.size();
        size = entry->total_size();
      }
      ReplicateSealed(owner, id);
      {
        MutexLock lock(owner.mutex);
        auto entry = owner.table.Lookup(id);
        if (entry.ok() && entry->copy_nodes.size() > before) {
          uint64_t added = entry->copy_nodes.size() - before;
          healed_copies += added;
          healed_bytes += added * size;
        }
      }
    }
  }
  if (healed_copies > 0) {
    reheal_copies_.fetch_add(healed_copies, std::memory_order_relaxed);
    reheal_bytes_.fetch_add(healed_bytes, std::memory_order_relaxed);
    MDOS_LOG_INFO << "store " << options_.name << ": re-heal sweep pushed "
                  << healed_copies << " copies (" << healed_bytes
                  << " bytes)";
  }
  return healed_copies;
}

void Store::RehealForDeadNode(uint32_t dead) {
  uint64_t healed_copies = 0;
  uint64_t healed_bytes = 0;
  for (auto& shard : shards_) {
    Shard& owner = *shard;
    // Objects this store must push a fresh copy of: below their desired
    // count after the strip, and this node won the healer election.
    std::vector<ObjectId> to_heal;
    {
      MutexLock lock(owner.mutex);
      for (const ObjectId& id : owner.table.CollectReplicatedWith(dead)) {
        auto entry = owner.table.Lookup(id);
        if (!entry.ok()) continue;
        std::vector<uint32_t> live;
        live.reserve(entry->copy_nodes.size());
        for (uint32_t node : entry->copy_nodes) {
          if (node != dead) live.push_back(node);
        }
        if (live.empty() || live.size() == entry->copy_nodes.size()) {
          continue;
        }
        // Every surviving holder runs the same computation on the same
        // copy set, so they all agree on the new origin and on which one
        // of them heals: the lowest live node id. Deterministic — no
        // coordination round needed.
        uint32_t healer = *std::min_element(live.begin(), live.end());
        uint32_t origin =
            entry->origin_node == dead ? healer : entry->origin_node;
        // mdos-check: allow-discard(the entry was verified live at the top of this loop body under this lock; a concurrent delete makes the update moot)
        (void)owner.table.SetReplication(id, entry->desired_copies,
                                         origin, live);
        if (live.size() < entry->desired_copies && healer == node_id_) {
          to_heal.push_back(id);
        }
      }
    }
    for (const ObjectId& id : to_heal) {
      size_t before = 0;
      uint64_t size = 0;
      {
        MutexLock lock(owner.mutex);
        auto entry = owner.table.Lookup(id);
        if (!entry.ok()) continue;
        before = entry->copy_nodes.size();
        size = entry->total_size();
      }
      // Restores from the spill tier if needed, pushes to registry-
      // chosen peers outside any lock, merges acceptors into the record.
      ReplicateSealed(owner, id);
      {
        MutexLock lock(owner.mutex);
        auto entry = owner.table.Lookup(id);
        if (entry.ok() && entry->copy_nodes.size() > before) {
          uint64_t added = entry->copy_nodes.size() - before;
          healed_copies += added;
          healed_bytes += added * size;
        }
      }
    }
  }
  if (healed_copies > 0) {
    reheal_copies_.fetch_add(healed_copies, std::memory_order_relaxed);
    reheal_bytes_.fetch_add(healed_bytes, std::memory_order_relaxed);
    MDOS_LOG_INFO << "store " << options_.name << ": re-heal after node "
                  << dead << " death pushed " << healed_copies
                  << " copies (" << healed_bytes << " bytes)";
  }
}

StoreStats Store::stats() {
  StoreStats s;
  s.capacity = options_.capacity;
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    s.bytes_in_use += shard->table.bytes_in_use();
    s.objects_total += shard->table.size();
    s.objects_sealed += shard->table.sealed_count();
    s.evictions += shard->eviction_count;
    s.spilled_objects += shard->table.spilled_count();
    s.spilled_bytes += shard->table.spilled_bytes();
    s.spills += shard->spill_count;
    s.spill_restores += shard->restore_count;
    s.frames_tx += shard->tx_frames.load(std::memory_order_relaxed);
    s.frames_coalesced +=
        shard->tx_frames_coalesced.load(std::memory_order_relaxed);
    s.writev_calls +=
        shard->tx_writev_calls.load(std::memory_order_relaxed);
    s.bytes_tx += shard->tx_bytes.load(std::memory_order_relaxed);
    s.egress_blocked_events +=
        shard->tx_blocked_events.load(std::memory_order_relaxed);
    s.mapped_reads += shard->mapped_reads.load(std::memory_order_relaxed);
    s.mapped_bytes += shard->mapped_bytes.load(std::memory_order_relaxed);
    s.mapped_fallbacks +=
        shard->mapped_fallbacks.load(std::memory_order_relaxed);
    s.replicas_total += shard->table.replicas_total();
    s.under_replicated += shard->table.under_replicated();
  }
  s.reheal_copies = reheal_copies_.load(std::memory_order_relaxed);
  s.reheal_bytes = reheal_bytes_.load(std::memory_order_relaxed);
  s.reheal_deduped = reheal_deduped_.load(std::memory_order_relaxed);
  s.reheal_dropped = reheal_dropped_.load(std::memory_order_relaxed);
  {
    MutexLock lock(reheal_mutex_);
    s.reheal_queue_depth = reheal_queue_.size();
  }
  s.remote_lookups = remote_lookups_.load(std::memory_order_relaxed);
  s.remote_lookup_hits =
      remote_lookup_hits_.load(std::memory_order_relaxed);
  // Peer-health totals from the dist layer (empty without peers).
  if (dist_hooks_ != nullptr) {
    // Generation-mismatch invalidations of cached descriptors live in
    // the dist layer (it validates against peers' generation tables).
    s.generation_retries = dist_hooks_->GenerationRetries();
    // Deadline/hedging outcomes likewise accumulate in the dist layer
    // (it owns the per-peer RPC machinery).
    DistHooks::RobustnessCounters robust =
        dist_hooks_->GetRobustnessCounters();
    s.deadline_exceeded = robust.deadline_exhausted;
    s.hedged_reads = robust.hedged_reads;
    s.hedge_wins = robust.hedge_wins;
    s.hedge_budget_denied = robust.hedge_budget_denied;
    for (const PeerStatsEntry& peer : dist_hooks_->PeerHealth()) {
      ++s.peers_total;
      if (peer.state == 0) ++s.peers_healthy;
      if (peer.state == 1) ++s.peers_suspect;
      if (peer.state == 2) ++s.peers_dead;
      s.peer_failed_rpcs += peer.failed_rpcs;
      s.peer_reconnects += peer.reconnects;
      s.peer_heartbeats += peer.heartbeats;
      s.peer_queued_notices += peer.queued_notices;
    }
  }
  return s;
}

std::vector<PeerStatsEntry> Store::peer_stats() {
  if (dist_hooks_ == nullptr) return {};
  return dist_hooks_->PeerHealth();
}

std::vector<ShardStatsEntry> Store::shard_stats() {
  std::vector<ShardStatsEntry> out;
  out.reserve(shards_.size());
  for (auto& shard : shards_) {
    ShardStatsEntry entry;
    entry.shard = shard->index;
    {
      MutexLock lock(shard->mutex);
      entry.objects_total = shard->table.size();
      entry.objects_sealed = shard->table.sealed_count();
      entry.bytes_in_use = shard->table.bytes_in_use();
      entry.evictions = shard->eviction_count;
      entry.spilled_objects = shard->table.spilled_count();
      entry.spilled_bytes = shard->table.spilled_bytes();
      entry.spill_restores = shard->restore_count;
      entry.replicas_total = shard->table.replicas_total();
      entry.under_replicated = shard->table.under_replicated();
    }
    entry.arena_capacity = pool_alloc_->arena_capacity(shard->index);
    entry.clients = shard->client_count.load(std::memory_order_relaxed);
    entry.inflight_gets =
        shard->parked_gets.load(std::memory_order_relaxed);
    entry.frames_tx = shard->tx_frames.load(std::memory_order_relaxed);
    entry.frames_coalesced =
        shard->tx_frames_coalesced.load(std::memory_order_relaxed);
    entry.writev_calls =
        shard->tx_writev_calls.load(std::memory_order_relaxed);
    entry.bytes_tx = shard->tx_bytes.load(std::memory_order_relaxed);
    entry.egress_blocked_events =
        shard->tx_blocked_events.load(std::memory_order_relaxed);
    entry.mapped_reads =
        shard->mapped_reads.load(std::memory_order_relaxed);
    entry.mapped_bytes =
        shard->mapped_bytes.load(std::memory_order_relaxed);
    entry.mapped_fallbacks =
        shard->mapped_fallbacks.load(std::memory_order_relaxed);
    out.push_back(entry);
  }
  return out;
}

alloc::AllocatorStats Store::allocator_stats() {
  std::vector<alloc::AllocatorStats> parts;
  parts.reserve(shards_.size());
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    parts.push_back(shard->arena->stats());
  }
  return alloc::ShardedAllocator::Merge(parts);
}

}  // namespace mdos::plasma
