// GenerationTable — per-object-slot generation counters published in
// disaggregated memory (the mapped data plane's validation protocol).
//
// The zero-RPC remote read path hands clients (node, region, offset,
// size, generation) descriptors instead of pinned bytes. Nothing stops
// the home store from evicting, spilling, deleting, or re-creating the
// object while a reader is still copying from the mapped region — so
// every id hashes to a slot in this table, and the home store BUMPS the
// slot on every transition that (re)binds or invalidates the id's bytes:
// seal, destructive evict, spill, spill-restore re-insert, delete. A
// mapped reader copies the payload, then re-reads the slot seqlock-style:
// an unchanged generation proves no such transition overlapped the copy;
// a changed one forces the reader down the RPC+pin fallback ladder.
//
// Slots are plain 64-bit atomics (no seqlock of their own — a bump is a
// single fetch_add), so unlike the shared index the table needs no
// single-writer serialization: any shard may bump concurrently. Ids that
// collide into one slot merely cause spurious invalidation (a safe
// fallback), never a false validation.
//
// The header carries an EPOCH, incremented by the node every time the
// table is re-created in place (store restart). A restarted store's
// counters restart near zero, so without the epoch a stale descriptor
// could validate against the new incarnation by accident; readers check
// epoch and generation together.
//
// Layout (all little-endian u64, 8-byte aligned):
//   header (64 bytes): [0] magic  [1] capacity (power of two)  [2] epoch
//   slots: capacity * 8-byte generation counters
//
// Thread-safety: all cross-thread access goes through std::atomic_ref,
// so the table is TSan-clean by construction and needs no mutex — the
// callers' ordering obligations (bump before freeing the bytes, read
// generation after copying them) are documented at the call sites.
#pragma once

#include <cstdint>
#include <optional>

#include "common/object_id.h"
#include "common/status.h"
#include "tf/latency_model.h"

namespace mdos::plasma {

struct GenerationTableLayout {
  static constexpr uint64_t kMagic = 0x314E45474F53444DULL;  // "MDOSGEN1"
  static constexpr uint64_t kHeaderBytes = 64;
  static constexpr uint64_t kSlotBytes = 8;

  // Largest power-of-two slot count that fits in `bytes`; 0 if too small.
  static uint64_t CapacityFor(uint64_t bytes);
  static uint64_t BytesFor(uint64_t capacity) {
    return kHeaderBytes + capacity * kSlotBytes;
  }
};

// Writer handle owned by the home node (one per store). Bumps are plain
// atomic increments and may be issued from any shard thread.
class GenerationTable {
 public:
  GenerationTable() = default;

  // Formats `bytes` of `memory` in place with the given epoch and
  // returns a writer over it. The epoch is the caller's restart counter:
  // the cluster layer passes a value that strictly increases across
  // re-creations on the same fabric region.
  static Result<GenerationTable> Create(uint8_t* memory, uint64_t bytes,
                                        uint64_t epoch);

  uint64_t capacity() const { return capacity_; }
  uint64_t epoch() const { return epoch_; }

  // Deterministic slot for an id (shared with remote readers).
  uint64_t SlotFor(const ObjectId& id) const;

  // Increments the id's slot and returns the NEW generation. seq_cst so
  // the bump is globally ordered against the shared-index update made in
  // the same critical section.
  uint64_t Bump(const ObjectId& id);

  // Current generation of the id's slot (descriptor stamping).
  uint64_t Read(const ObjectId& id) const;

 private:
  GenerationTable(uint8_t* slots, uint64_t capacity, uint64_t epoch);

  uint8_t* slots_ = nullptr;
  uint64_t capacity_ = 0;
  uint64_t epoch_ = 0;
};

// Reader handle over a peer's table reached through an attached fabric
// region. Each slot read is one 8-byte remote access and is charged to
// the latency model, like a shared-index probe.
class GenerationReader {
 public:
  GenerationReader() = default;

  static Result<GenerationReader> Open(const uint8_t* memory,
                                       uint64_t bytes,
                                       tf::LatencyParams latency);

  uint64_t capacity() const { return capacity_; }
  uint64_t SlotFor(const ObjectId& id) const;

  // Current generation of `slot` (acquire load + modelled latency).
  // With `batch` set, the access is recorded there instead of stalling
  // inline — for callers probing many independent slots in one wave.
  uint64_t Read(uint64_t slot, tf::AccessBatch* batch = nullptr) const;

  // Re-reads the epoch from the mapped header: a restarted home store
  // re-creates the table with a higher epoch, so cached descriptors and
  // cached readers both fail validation instead of matching counters
  // from the wrong incarnation.
  uint64_t Epoch(tf::AccessBatch* batch = nullptr) const;

 private:
  GenerationReader(const uint8_t* header, uint64_t capacity,
                   tf::LatencyParams latency);

  const uint8_t* header_ = nullptr;  // mapped table base (header start)
  const uint8_t* slots_ = nullptr;
  uint64_t capacity_ = 0;
  tf::LatencyParams latency_;
};

}  // namespace mdos::plasma
