#include "plasma/eviction.h"

namespace mdos::plasma {

void EvictionPolicy::Add(const ObjectId& id, uint64_t size) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Node{id, size});
  index_.emplace(id, lru_.begin());
}

void EvictionPolicy::Touch(const ObjectId& id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Node node = *it->second;
  lru_.erase(it->second);
  lru_.push_front(node);
  it->second = lru_.begin();
}

void EvictionPolicy::Remove(const ObjectId& id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

bool EvictionPolicy::Contains(const ObjectId& id) const {
  return index_.count(id) != 0;
}

}  // namespace mdos::plasma
