// ObjectTable — the store's bookkeeping of Plasma objects.
//
// "The Plasma store is essentially a memory bookkeeping service for
// Plasma data objects" (paper §IV-A1). The table maps object ids to their
// pool placement and lifecycle state:
//
//   created --Seal--> sealed --Delete/Evict--> gone
//      \--Abort--> gone       \--Spill--> spilled --Restore--> sealed
//                                  \--Delete--> gone
//
// Sealed objects are immutable; clients pin them with Get and unpin with
// Release, and only unpinned sealed objects are evictable. kSpilled is
// the disk tier's state: the object's bytes live in the owning shard's
// spill file (ObjectEntry::spill_offset), its pool allocation is gone,
// and a Get transparently restores it to kSealed before replying —
// spilled objects are therefore never pinned and never in the eviction
// LRU. Spilled bytes are tracked separately from bytes_in_use (which
// counts pool residency only). The table is
// not internally synchronized: in the sharded store core each shard owns
// one ObjectTable covering its hash slice of the object space, guarded
// (together with that shard's allocator arena and eviction policy) by
// the shard's mutex. Any thread — another shard's event loop, the RPC
// server thread — takes that mutex to touch the slice, which generalizes
// the paper's single table + single mutex design (the mechanism it added
// when the RPC thread started sharing the object-identifier map) to N
// independent slices.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "plasma/protocol.h"

namespace mdos::plasma {

enum class ObjectState : uint8_t {
  kCreated = 0,
  kSealed = 1,
  kSpilled = 2,  // sealed, but resident in the shard's spill file
};

struct ObjectEntry {
  ObjectId id;
  ObjectState state = ObjectState::kCreated;
  uint64_t offset = 0;  // pool-relative offset of the data section
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  // File offset of the record in the shard's spill file (kSpilled only;
  // `offset` is meaningless while spilled).
  uint64_t spill_offset = 0;
  uint32_t local_refs = 0;  // pins held by local clients
  int creator_fd = -1;      // connection that created it (abort cleanup)
  int64_t created_ns = 0;
  int64_t sealed_ns = 0;

  // k-way replication (PR 8). desired_copies is how many live copies the
  // object should have cluster-wide; copy_nodes is the node set believed
  // to hold one (self included). origin_node is the node whose Seal
  // published the object — replicas (origin != self) never fan out on
  // their own and are dropped when the origin deletes.
  uint32_t desired_copies = 1;
  uint32_t origin_node = 0;
  std::vector<uint32_t> copy_nodes;

  uint64_t total_size() const { return data_size + metadata_size; }
};

class ObjectTable {
 public:
  // Registers a freshly created (unsealed) object.
  Status AddCreated(const ObjectEntry& entry);

  [[nodiscard]] bool Contains(const ObjectId& id) const;
  // True for kSealed and kSpilled: both are immutable and retrievable
  // here; residency (pool vs spill file) is a tier detail callers that
  // only ask about availability should not see.
  [[nodiscard]] bool ContainsSealed(const ObjectId& id) const;

  // Copy-out lookup; KeyError when absent.
  Result<ObjectEntry> Lookup(const ObjectId& id) const;

  // created -> sealed. NotSealed-state errors map to the paper's
  // race-free seal semantics.
  Status Seal(const ObjectId& id);

  Status AddRef(const ObjectId& id);
  // Returns the new ref count.
  Result<uint32_t> ReleaseRef(const ObjectId& id);

  // sealed -> spilled: the pool allocation is being released and the
  // bytes now live at `spill_offset` in the shard's spill file. Fails
  // unless the object is sealed, unpinned, and unspilled.
  Status MarkSpilled(const ObjectId& id, uint64_t spill_offset);
  // spilled -> sealed: the bytes were read back into the pool at
  // `pool_offset`.
  Status MarkRestored(const ObjectId& id, uint64_t pool_offset);
  // Rewrites a spilled entry's file offset (spill-file compaction).
  Status UpdateSpillOffset(const ObjectId& id, uint64_t spill_offset);

  // Removes an object and returns its entry (for allocator free, or
  // spill-slot free when the entry was kSpilled).
  // `force` skips the sealed/ref checks (abort & disconnect cleanup).
  Result<ObjectEntry> Remove(const ObjectId& id, bool force = false);

  std::vector<ObjectInfo> List() const;
  // Unsealed objects created by `fd` (client-crash cleanup).
  std::vector<ObjectId> UnsealedCreatedBy(int fd) const;

  // ---- k-way replication bookkeeping ------------------------------------
  // The node id the owning shard runs on; feeds the replication
  // aggregates (a copy on another node counts toward replicas_total only
  // on the object's origin node).
  void set_self_node(uint32_t node) { self_node_ = node; }

  // Rewrites an entry's replication record (desired copy count, origin,
  // and the believed copy set) and keeps the aggregates consistent.
  Status SetReplication(const ObjectId& id, uint32_t desired,
                        uint32_t origin, std::vector<uint32_t> copy_nodes);

  // Sealed/spilled objects whose copy set includes `node` (re-heal scan
  // after that node dies).
  std::vector<ObjectId> CollectReplicatedWith(uint32_t node) const;

  // Sealed/spilled objects below their desired copy count (the re-heal
  // worker's periodic sweep — catches copies whose initial push failed
  // over a faulted network).
  std::vector<ObjectId> CollectUnderReplicated() const;

  // Remote copies of locally-originated sealed/spilled objects.
  uint64_t replicas_total() const { return replicas_total_; }
  // Sealed/spilled objects below their desired copy count.
  uint64_t under_replicated() const { return under_replicated_; }

  size_t size() const { return entries_.size(); }
  // Sealed objects resident in the pool (spilled objects not included).
  size_t sealed_count() const { return sealed_count_; }
  // Pool bytes only; spilled bytes are reported separately.
  uint64_t bytes_in_use() const { return bytes_in_use_; }
  size_t spilled_count() const { return spilled_count_; }
  uint64_t spilled_bytes() const { return spilled_bytes_; }

 private:
  // An entry contributes to the replication aggregates only while sealed
  // or spilled; these are paired around every counted-state or
  // replication-field change.
  void AddReplicationAggregates(const ObjectEntry& entry);
  void SubReplicationAggregates(const ObjectEntry& entry);

  std::unordered_map<ObjectId, ObjectEntry> entries_;
  size_t sealed_count_ = 0;
  uint64_t bytes_in_use_ = 0;
  size_t spilled_count_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint32_t self_node_ = 0;
  uint64_t replicas_total_ = 0;
  uint64_t under_replicated_ = 0;
};

}  // namespace mdos::plasma
