#include "plasma/protocol.h"

#include "net/frame.h"

namespace mdos::plasma {

void EncodeStatus(wire::Writer& w, const Status& s) {
  w.PutU8(static_cast<uint8_t>(s.code()));
  w.PutString(s.message());
}

Status DecodeStatus(wire::Reader& r, Status* out) {
  MDOS_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::ProtocolError("bad status code");
  }
  MDOS_ASSIGN_OR_RETURN(std::string message, r.GetString());
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// ---- connect -------------------------------------------------------------

void ConnectRequest::EncodeTo(wire::Writer& w) const {
  w.PutString(client_name);
}
Result<ConnectRequest> ConnectRequest::DecodeFrom(wire::Reader& r) {
  ConnectRequest m;
  MDOS_ASSIGN_OR_RETURN(m.client_name, r.GetString());
  return m;
}

void ConnectReply::EncodeTo(wire::Writer& w) const {
  w.PutU32(node_id);
  w.PutU32(pool_region_id);
  w.PutU64(pool_size);
  w.PutU64(pool_slab_offset);
  w.PutString(store_name);
}
Result<ConnectReply> ConnectReply::DecodeFrom(wire::Reader& r) {
  ConnectReply m;
  MDOS_ASSIGN_OR_RETURN(m.node_id, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.pool_region_id, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.pool_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.pool_slab_offset, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.store_name, r.GetString());
  return m;
}

// ---- create / seal / abort ----------------------------------------------

void CreateRequest::EncodeTo(wire::Writer& w) const {
  w.PutObjectId(id);
  w.PutU64(data_size);
  w.PutU64(metadata_size);
  w.PutBool(replicate);
}
Result<CreateRequest> CreateRequest::DecodeFrom(wire::Reader& r) {
  CreateRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  MDOS_ASSIGN_OR_RETURN(m.data_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.metadata_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.replicate, r.GetBool());
  return m;
}

void CreateReply::EncodeTo(wire::Writer& w) const {
  EncodeStatus(w, status);
  w.PutU64(offset);
  w.PutU64(data_size);
  w.PutU64(metadata_size);
}
Result<CreateReply> CreateReply::DecodeFrom(wire::Reader& r) {
  CreateReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  MDOS_ASSIGN_OR_RETURN(m.offset, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.data_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.metadata_size, r.GetU64());
  return m;
}

void SealRequest::EncodeTo(wire::Writer& w) const { w.PutObjectId(id); }
Result<SealRequest> SealRequest::DecodeFrom(wire::Reader& r) {
  SealRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  return m;
}

void SealReply::EncodeTo(wire::Writer& w) const { EncodeStatus(w, status); }
Result<SealReply> SealReply::DecodeFrom(wire::Reader& r) {
  SealReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  return m;
}

void AbortRequest::EncodeTo(wire::Writer& w) const { w.PutObjectId(id); }
Result<AbortRequest> AbortRequest::DecodeFrom(wire::Reader& r) {
  AbortRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  return m;
}

void AbortReply::EncodeTo(wire::Writer& w) const { EncodeStatus(w, status); }
Result<AbortReply> AbortReply::DecodeFrom(wire::Reader& r) {
  AbortReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  return m;
}

// ---- get / release -------------------------------------------------------

void GetRequest::EncodeTo(wire::Writer& w) const {
  w.PutRepeated(ids, [](wire::Writer& w2, const ObjectId& id) {
    w2.PutObjectId(id);
  });
  w.PutVarint(timeout_ms);
  w.PutBool(pinned);
  w.PutBool(fallback);
}
Result<GetRequest> GetRequest::DecodeFrom(wire::Reader& r) {
  GetRequest m;
  MDOS_ASSIGN_OR_RETURN(
      m.ids, (r.GetRepeated<ObjectId>(
                 [](wire::Reader& r2) { return r2.GetObjectId(); })));
  MDOS_ASSIGN_OR_RETURN(m.timeout_ms, r.GetVarint());
  MDOS_ASSIGN_OR_RETURN(m.pinned, r.GetBool());
  MDOS_ASSIGN_OR_RETURN(m.fallback, r.GetBool());
  return m;
}

void GetReplyEntry::EncodeTo(wire::Writer& w) const {
  w.PutObjectId(id);
  w.PutBool(found);
  w.PutU8(static_cast<uint8_t>(location));
  w.PutU64(offset);
  w.PutU64(data_size);
  w.PutU64(metadata_size);
  w.PutU32(home_node);
  w.PutU32(home_region);
  w.PutBool(mapped);
  w.PutU64(generation);
  w.PutU64(gen_slot);
  w.PutU32(gen_region);
  w.PutU64(gen_epoch);
}
Result<GetReplyEntry> GetReplyEntry::DecodeFrom(wire::Reader& r) {
  GetReplyEntry m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  MDOS_ASSIGN_OR_RETURN(m.found, r.GetBool());
  MDOS_ASSIGN_OR_RETURN(uint8_t loc, r.GetU8());
  if (loc > 1) return Status::ProtocolError("bad object location");
  m.location = static_cast<ObjectLocation>(loc);
  MDOS_ASSIGN_OR_RETURN(m.offset, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.data_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.metadata_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.home_node, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.home_region, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.mapped, r.GetBool());
  MDOS_ASSIGN_OR_RETURN(m.generation, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.gen_slot, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.gen_region, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.gen_epoch, r.GetU64());
  return m;
}

void GetReply::EncodeTo(wire::Writer& w) const {
  EncodeStatus(w, status);
  w.PutRepeated(entries, [](wire::Writer& w2, const GetReplyEntry& e) {
    e.EncodeTo(w2);
  });
}
Result<GetReply> GetReply::DecodeFrom(wire::Reader& r) {
  GetReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  MDOS_ASSIGN_OR_RETURN(m.entries,
                        (r.GetRepeated<GetReplyEntry>([](wire::Reader& r2) {
                          return GetReplyEntry::DecodeFrom(r2);
                        })));
  return m;
}

void ReleaseRequest::EncodeTo(wire::Writer& w) const { w.PutObjectId(id); }
Result<ReleaseRequest> ReleaseRequest::DecodeFrom(wire::Reader& r) {
  ReleaseRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  return m;
}

void ReleaseReply::EncodeTo(wire::Writer& w) const {
  EncodeStatus(w, status);
}
Result<ReleaseReply> ReleaseReply::DecodeFrom(wire::Reader& r) {
  ReleaseReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  return m;
}

// ---- contains / delete / list / stats -------------------------------------

void ContainsRequest::EncodeTo(wire::Writer& w) const {
  w.PutObjectId(id);
}
Result<ContainsRequest> ContainsRequest::DecodeFrom(wire::Reader& r) {
  ContainsRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  return m;
}

void ContainsReply::EncodeTo(wire::Writer& w) const {
  w.PutBool(contains);
}
Result<ContainsReply> ContainsReply::DecodeFrom(wire::Reader& r) {
  ContainsReply m;
  MDOS_ASSIGN_OR_RETURN(m.contains, r.GetBool());
  return m;
}

void DeleteRequest::EncodeTo(wire::Writer& w) const { w.PutObjectId(id); }
Result<DeleteRequest> DeleteRequest::DecodeFrom(wire::Reader& r) {
  DeleteRequest m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  return m;
}

void DeleteReply::EncodeTo(wire::Writer& w) const {
  EncodeStatus(w, status);
}
Result<DeleteReply> DeleteReply::DecodeFrom(wire::Reader& r) {
  DeleteReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  return m;
}

void ObjectInfo::EncodeTo(wire::Writer& w) const {
  w.PutObjectId(id);
  w.PutU64(data_size);
  w.PutU64(metadata_size);
  w.PutBool(sealed);
  w.PutBool(spilled);
  w.PutU32(ref_count);
}
Result<ObjectInfo> ObjectInfo::DecodeFrom(wire::Reader& r) {
  ObjectInfo m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  MDOS_ASSIGN_OR_RETURN(m.data_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.metadata_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.sealed, r.GetBool());
  MDOS_ASSIGN_OR_RETURN(m.spilled, r.GetBool());
  MDOS_ASSIGN_OR_RETURN(m.ref_count, r.GetU32());
  return m;
}

void ListRequest::EncodeTo(wire::Writer&) const {}
Result<ListRequest> ListRequest::DecodeFrom(wire::Reader&) {
  return ListRequest{};
}

void ListReply::EncodeTo(wire::Writer& w) const {
  w.PutRepeated(objects, [](wire::Writer& w2, const ObjectInfo& o) {
    o.EncodeTo(w2);
  });
}
Result<ListReply> ListReply::DecodeFrom(wire::Reader& r) {
  ListReply m;
  MDOS_ASSIGN_OR_RETURN(m.objects,
                        (r.GetRepeated<ObjectInfo>([](wire::Reader& r2) {
                          return ObjectInfo::DecodeFrom(r2);
                        })));
  return m;
}

void StatsRequest::EncodeTo(wire::Writer&) const {}
Result<StatsRequest> StatsRequest::DecodeFrom(wire::Reader&) {
  return StatsRequest{};
}

void StoreStats::EncodeTo(wire::Writer& w) const {
  w.PutU64(capacity);
  w.PutU64(bytes_in_use);
  w.PutU64(objects_total);
  w.PutU64(objects_sealed);
  w.PutU64(evictions);
  w.PutU64(remote_lookups);
  w.PutU64(remote_lookup_hits);
  w.PutU64(lookup_cache_hits);
  w.PutU64(spilled_objects);
  w.PutU64(spilled_bytes);
  w.PutU64(spills);
  w.PutU64(spill_restores);
  w.PutU64(frames_tx);
  w.PutU64(frames_coalesced);
  w.PutU64(writev_calls);
  w.PutU64(bytes_tx);
  w.PutU64(egress_blocked_events);
  w.PutU64(peers_total);
  w.PutU64(peers_healthy);
  w.PutU64(peers_suspect);
  w.PutU64(peers_dead);
  w.PutU64(peer_failed_rpcs);
  w.PutU64(peer_reconnects);
  w.PutU64(peer_heartbeats);
  w.PutU64(peer_queued_notices);
  w.PutU64(mapped_reads);
  w.PutU64(mapped_bytes);
  w.PutU64(generation_retries);
  w.PutU64(mapped_fallbacks);
  w.PutU64(replicas_total);
  w.PutU64(under_replicated);
  w.PutU64(reheal_copies);
  w.PutU64(reheal_bytes);
  w.PutU64(reheal_deduped);
  w.PutU64(reheal_dropped);
  w.PutU64(reheal_queue_depth);
  w.PutU64(deadline_exceeded);
  w.PutU64(hedged_reads);
  w.PutU64(hedge_wins);
  w.PutU64(hedge_budget_denied);
}
Result<StoreStats> StoreStats::DecodeFrom(wire::Reader& r) {
  StoreStats m;
  MDOS_ASSIGN_OR_RETURN(m.capacity, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.bytes_in_use, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.objects_total, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.objects_sealed, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.evictions, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.remote_lookups, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.remote_lookup_hits, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.lookup_cache_hits, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spilled_objects, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spilled_bytes, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spills, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spill_restores, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.frames_tx, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.frames_coalesced, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.writev_calls, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.bytes_tx, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.egress_blocked_events, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peers_total, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peers_healthy, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peers_suspect, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peers_dead, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peer_failed_rpcs, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peer_reconnects, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peer_heartbeats, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.peer_queued_notices, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_reads, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_bytes, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.generation_retries, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_fallbacks, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.replicas_total, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.under_replicated, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reheal_copies, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reheal_bytes, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reheal_deduped, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reheal_dropped, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reheal_queue_depth, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.deadline_exceeded, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.hedged_reads, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.hedge_wins, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.hedge_budget_denied, r.GetU64());
  return m;
}

void StatsReply::EncodeTo(wire::Writer& w) const { stats.EncodeTo(w); }
Result<StatsReply> StatsReply::DecodeFrom(wire::Reader& r) {
  StatsReply m;
  MDOS_ASSIGN_OR_RETURN(m.stats, StoreStats::DecodeFrom(r));
  return m;
}

void ShardStatsEntry::EncodeTo(wire::Writer& w) const {
  w.PutU32(shard);
  w.PutU64(clients);
  w.PutU64(objects_total);
  w.PutU64(objects_sealed);
  w.PutU64(bytes_in_use);
  w.PutU64(arena_capacity);
  w.PutU64(evictions);
  w.PutU64(inflight_gets);
  w.PutU64(spilled_objects);
  w.PutU64(spilled_bytes);
  w.PutU64(spill_restores);
  w.PutU64(frames_tx);
  w.PutU64(frames_coalesced);
  w.PutU64(writev_calls);
  w.PutU64(bytes_tx);
  w.PutU64(egress_blocked_events);
  w.PutU64(mapped_reads);
  w.PutU64(mapped_bytes);
  w.PutU64(mapped_fallbacks);
  w.PutU64(replicas_total);
  w.PutU64(under_replicated);
}
Result<ShardStatsEntry> ShardStatsEntry::DecodeFrom(wire::Reader& r) {
  ShardStatsEntry m;
  MDOS_ASSIGN_OR_RETURN(m.shard, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.clients, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.objects_total, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.objects_sealed, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.bytes_in_use, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.arena_capacity, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.evictions, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.inflight_gets, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spilled_objects, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spilled_bytes, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.spill_restores, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.frames_tx, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.frames_coalesced, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.writev_calls, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.bytes_tx, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.egress_blocked_events, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_reads, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_bytes, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.mapped_fallbacks, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.replicas_total, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.under_replicated, r.GetU64());
  return m;
}

void ShardStatsRequest::EncodeTo(wire::Writer&) const {}
Result<ShardStatsRequest> ShardStatsRequest::DecodeFrom(wire::Reader&) {
  return ShardStatsRequest{};
}

void ShardStatsReply::EncodeTo(wire::Writer& w) const {
  w.PutRepeated(shards,
                [](wire::Writer& w2, const ShardStatsEntry& entry) {
                  entry.EncodeTo(w2);
                });
}
Result<ShardStatsReply> ShardStatsReply::DecodeFrom(wire::Reader& r) {
  ShardStatsReply m;
  MDOS_ASSIGN_OR_RETURN(
      m.shards,
      r.GetRepeated<ShardStatsEntry>([](wire::Reader& r2) {
        return ShardStatsEntry::DecodeFrom(r2);
      }));
  return m;
}

void PeerStatsEntry::EncodeTo(wire::Writer& w) const {
  w.PutU32(node_id);
  w.PutU8(state);
  w.PutU64(failure_streak);
  w.PutU64(failed_rpcs);
  w.PutU64(reconnects);
  w.PutU64(heartbeats);
  w.PutU64(queued_notices);
  w.PutU64(dropped_notices);
  w.PutU64(static_cast<uint64_t>(ms_since_ok));
  w.PutU64(static_cast<uint64_t>(ewma_latency_us));
}
Result<PeerStatsEntry> PeerStatsEntry::DecodeFrom(wire::Reader& r) {
  PeerStatsEntry m;
  MDOS_ASSIGN_OR_RETURN(m.node_id, r.GetU32());
  MDOS_ASSIGN_OR_RETURN(m.state, r.GetU8());
  MDOS_ASSIGN_OR_RETURN(m.failure_streak, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.failed_rpcs, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.reconnects, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.heartbeats, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.queued_notices, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.dropped_notices, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(uint64_t since, r.GetU64());
  m.ms_since_ok = static_cast<int64_t>(since);
  MDOS_ASSIGN_OR_RETURN(uint64_t ewma, r.GetU64());
  m.ewma_latency_us = static_cast<int64_t>(ewma);
  return m;
}

void PeerStatsRequest::EncodeTo(wire::Writer&) const {}
Result<PeerStatsRequest> PeerStatsRequest::DecodeFrom(wire::Reader&) {
  return PeerStatsRequest{};
}

void PeerStatsReply::EncodeTo(wire::Writer& w) const {
  w.PutRepeated(peers, [](wire::Writer& w2, const PeerStatsEntry& entry) {
    entry.EncodeTo(w2);
  });
}
Result<PeerStatsReply> PeerStatsReply::DecodeFrom(wire::Reader& r) {
  PeerStatsReply m;
  MDOS_ASSIGN_OR_RETURN(m.peers,
                        (r.GetRepeated<PeerStatsEntry>([](wire::Reader& r2) {
                          return PeerStatsEntry::DecodeFrom(r2);
                        })));
  return m;
}

void SubscribeRequest::EncodeTo(wire::Writer& w) const {
  w.PutString(subscriber_name);
}
Result<SubscribeRequest> SubscribeRequest::DecodeFrom(wire::Reader& r) {
  SubscribeRequest m;
  MDOS_ASSIGN_OR_RETURN(m.subscriber_name, r.GetString());
  return m;
}

void SubscribeReply::EncodeTo(wire::Writer& w) const {
  EncodeStatus(w, status);
}
Result<SubscribeReply> SubscribeReply::DecodeFrom(wire::Reader& r) {
  SubscribeReply m;
  MDOS_RETURN_IF_ERROR(DecodeStatus(r, &m.status));
  return m;
}

void Notification::EncodeTo(wire::Writer& w) const {
  w.PutObjectId(id);
  w.PutU64(data_size);
  w.PutU64(metadata_size);
  w.PutBool(deleted);
}
Result<Notification> Notification::DecodeFrom(wire::Reader& r) {
  Notification m;
  MDOS_ASSIGN_OR_RETURN(m.id, r.GetObjectId());
  MDOS_ASSIGN_OR_RETURN(m.data_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.metadata_size, r.GetU64());
  MDOS_ASSIGN_OR_RETURN(m.deleted, r.GetBool());
  return m;
}

Result<uint64_t> PeekRequestId(const uint8_t* payload, size_t size) {
  wire::Reader r(payload, size);
  MDOS_ASSIGN_OR_RETURN(wire::MessageHeader header,
                        wire::MessageHeader::DecodeFrom(r));
  return header.request_id;
}

Result<uint64_t> PeekRequestId(const std::vector<uint8_t>& payload) {
  return PeekRequestId(payload.data(), payload.size());
}

Result<std::vector<uint8_t>> RecvExpect(int fd, MessageType expected,
                                        uint64_t* request_id) {
  MDOS_ASSIGN_OR_RETURN(net::Frame frame, net::RecvFrame(fd));
  if (frame.type != static_cast<uint32_t>(expected)) {
    return Status::ProtocolError(
        "unexpected message type " + std::to_string(frame.type) +
        " (expected " + std::to_string(static_cast<uint32_t>(expected)) +
        ")");
  }
  if (request_id != nullptr) {
    MDOS_ASSIGN_OR_RETURN(*request_id, PeekRequestId(frame.payload));
  }
  return std::move(frame.payload);
}

}  // namespace mdos::plasma
