// Plasma store↔client IPC protocol.
//
// Clients talk to their node-local store over a Unix domain socket, as in
// upstream Apache Arrow Plasma (paper §IV-A2: "Plasma conducts
// Inter-Process Communication (IPC) between Plasma store and clients
// through Unix domain sockets"). Each message is one net::Frame whose
// frame type is the MessageType and whose payload is the wire-encoded
// struct below. Object *data* never travels through the socket: buffers
// live in the node's (disaggregated) memory pool; the pool fd crosses the
// socket once at connect time via SCM_RIGHTS, and buffer handles are
// (offset, size) pairs — or (node, region, offset, size) for remote
// objects resolved through the fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/object_id.h"
#include "common/status.h"
#include "wire/wire.h"

namespace mdos::plasma {

enum class MessageType : uint32_t {
  kConnectRequest = 1,
  kConnectReply,
  kCreateRequest,
  kCreateReply,
  kSealRequest,
  kSealReply,
  kAbortRequest,
  kAbortReply,
  kGetRequest,
  kGetReply,
  kReleaseRequest,
  kReleaseReply,
  kContainsRequest,
  kContainsReply,
  kDeleteRequest,
  kDeleteReply,
  kListRequest,
  kListReply,
  kStatsRequest,
  kStatsReply,
  kDisconnectRequest,
  kSubscribeRequest,
  kSubscribeReply,
  kNotification,  // store -> subscriber push, no reply
  // GetStoreStats extension (sharded store core): per-shard statistics.
  kShardStatsRequest,
  kShardStatsReply,
  // Peer-health extension (cluster failure handling): one row per peer
  // store with its health state and failure counters.
  kPeerStatsRequest,
  kPeerStatsReply,
};

// Where an object's bytes live, from the requesting client's viewpoint.
enum class ObjectLocation : uint8_t {
  kLocal = 0,   // this node's pool; `offset` is pool-relative
  kRemote = 1,  // a remote node's exported region, reachable via fabric
};

// ---- connect -------------------------------------------------------------

struct ConnectRequest {
  std::string client_name;
  void EncodeTo(wire::Writer& w) const;
  static Result<ConnectRequest> DecodeFrom(wire::Reader& r);
};

struct ConnectReply {
  uint32_t node_id = 0;
  uint32_t pool_region_id = UINT32_MAX;  // fabric region of the pool
  uint64_t pool_size = 0;
  // Offset of the pool within the shared fd's mapping; clients that mmap
  // the fd directly add this to pool-relative offsets.
  uint64_t pool_slab_offset = 0;
  std::string store_name;
  // After this frame the store sends the pool memfd via SCM_RIGHTS.
  void EncodeTo(wire::Writer& w) const;
  static Result<ConnectReply> DecodeFrom(wire::Reader& r);
};

// ---- create / seal / abort ----------------------------------------------

struct CreateRequest {
  ObjectId id;
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  // Per-object replication request: on Seal the store fans the bytes out
  // to peer replicas even when StoreOptions::replication_factor is 1
  // (the effective copy count is max(replication_factor, 2) then).
  bool replicate = false;
  void EncodeTo(wire::Writer& w) const;
  static Result<CreateRequest> DecodeFrom(wire::Reader& r);
};

struct CreateReply {
  Status status;  // travels as (code, message)
  uint64_t offset = 0;  // pool-relative offset of the data section
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  void EncodeTo(wire::Writer& w) const;
  static Result<CreateReply> DecodeFrom(wire::Reader& r);
};

struct SealRequest {
  ObjectId id;
  void EncodeTo(wire::Writer& w) const;
  static Result<SealRequest> DecodeFrom(wire::Reader& r);
};

struct SealReply {
  Status status;
  void EncodeTo(wire::Writer& w) const;
  static Result<SealReply> DecodeFrom(wire::Reader& r);
};

struct AbortRequest {
  ObjectId id;
  void EncodeTo(wire::Writer& w) const;
  static Result<AbortRequest> DecodeFrom(wire::Reader& r);
};

struct AbortReply {
  Status status;
  void EncodeTo(wire::Writer& w) const;
  static Result<AbortReply> DecodeFrom(wire::Reader& r);
};

// ---- get / release -------------------------------------------------------

struct GetRequest {
  std::vector<ObjectId> ids;
  uint64_t timeout_ms = 0;  // 0: reply immediately with what exists
  // Force the RPC+pin path for remote objects even when the store runs
  // in mapped-remote-reads mode: the reply entries are pinned at their
  // home store and carry no generation validation burden. This is the
  // bottom of the mapped read path's fallback ladder (and the baseline
  // mode benchmarks compare against).
  bool pinned = false;
  // Set by the client's transparent generation-mismatch refetch so the
  // store can count mapped_fallbacks (plain pinned Gets don't).
  bool fallback = false;
  void EncodeTo(wire::Writer& w) const;
  static Result<GetRequest> DecodeFrom(wire::Reader& r);
};

struct GetReplyEntry {
  ObjectId id;
  bool found = false;
  ObjectLocation location = ObjectLocation::kLocal;
  uint64_t offset = 0;  // pool-relative (local) or region-relative (remote)
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  uint32_t home_node = 0;        // remote only
  uint32_t home_region = 0;      // remote only: fabric RegionId
  // Mapped data plane (zero-RPC remote reads): a mapped entry is NOT
  // pinned at its home store — the client copies the payload from the
  // mapped region and validates `generation` against slot `gen_slot` of
  // the home node's generation table (region `gen_region`, incarnation
  // `gen_epoch`) after every read; a mismatch falls back to a pinned
  // re-Get. All four fields are meaningful only when `mapped` is true.
  bool mapped = false;
  uint64_t generation = 0;
  uint64_t gen_slot = 0;
  uint32_t gen_region = UINT32_MAX;
  uint64_t gen_epoch = 0;
  void EncodeTo(wire::Writer& w) const;
  static Result<GetReplyEntry> DecodeFrom(wire::Reader& r);
};

struct GetReply {
  Status status;
  std::vector<GetReplyEntry> entries;
  void EncodeTo(wire::Writer& w) const;
  static Result<GetReply> DecodeFrom(wire::Reader& r);
};

struct ReleaseRequest {
  ObjectId id;
  void EncodeTo(wire::Writer& w) const;
  static Result<ReleaseRequest> DecodeFrom(wire::Reader& r);
};

struct ReleaseReply {
  Status status;
  void EncodeTo(wire::Writer& w) const;
  static Result<ReleaseReply> DecodeFrom(wire::Reader& r);
};

// ---- contains / delete / list / stats -------------------------------------

struct ContainsRequest {
  ObjectId id;
  void EncodeTo(wire::Writer& w) const;
  static Result<ContainsRequest> DecodeFrom(wire::Reader& r);
};

struct ContainsReply {
  bool contains = false;
  void EncodeTo(wire::Writer& w) const;
  static Result<ContainsReply> DecodeFrom(wire::Reader& r);
};

struct DeleteRequest {
  ObjectId id;
  void EncodeTo(wire::Writer& w) const;
  static Result<DeleteRequest> DecodeFrom(wire::Reader& r);
};

struct DeleteReply {
  Status status;
  void EncodeTo(wire::Writer& w) const;
  static Result<DeleteReply> DecodeFrom(wire::Reader& r);
};

struct ObjectInfo {
  ObjectId id;
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  bool sealed = false;
  bool spilled = false;  // sealed but resident in the disk spill tier
  uint32_t ref_count = 0;
  void EncodeTo(wire::Writer& w) const;
  static Result<ObjectInfo> DecodeFrom(wire::Reader& r);
};

struct ListRequest {
  void EncodeTo(wire::Writer& w) const;
  static Result<ListRequest> DecodeFrom(wire::Reader& r);
};

struct ListReply {
  std::vector<ObjectInfo> objects;
  void EncodeTo(wire::Writer& w) const;
  static Result<ListReply> DecodeFrom(wire::Reader& r);
};

struct StatsRequest {
  void EncodeTo(wire::Writer& w) const;
  static Result<StatsRequest> DecodeFrom(wire::Reader& r);
};

struct StoreStats {
  uint64_t capacity = 0;
  uint64_t bytes_in_use = 0;
  uint64_t objects_total = 0;
  uint64_t objects_sealed = 0;
  uint64_t evictions = 0;
  uint64_t remote_lookups = 0;
  uint64_t remote_lookup_hits = 0;
  uint64_t lookup_cache_hits = 0;
  // Disk spill tier (zero when StoreOptions::spill_dir is unset).
  uint64_t spilled_objects = 0;  // currently resident on disk
  uint64_t spilled_bytes = 0;
  uint64_t spills = 0;           // cumulative objects written to disk
  uint64_t spill_restores = 0;   // cumulative objects read back
  // Egress (non-blocking write-queue) counters, summed over shards.
  uint64_t frames_tx = 0;              // reply frames enqueued
  uint64_t frames_coalesced = 0;       // frames that shared a writev
  uint64_t writev_calls = 0;           // gather-write syscalls issued
  uint64_t bytes_tx = 0;               // reply bytes on the wire
  uint64_t egress_blocked_events = 0;  // flushes parked on EAGAIN
  // Peer health (cluster failure handling; zero without peers). States
  // count the dist layer's health machine: healthy / suspect / dead.
  uint64_t peers_total = 0;
  uint64_t peers_healthy = 0;
  uint64_t peers_suspect = 0;
  uint64_t peers_dead = 0;
  uint64_t peer_failed_rpcs = 0;   // cumulative failed peer calls
  uint64_t peer_reconnects = 0;    // channel redials that succeeded
  uint64_t peer_heartbeats = 0;    // Plasma.Ping calls sent
  uint64_t peer_queued_notices = 0;  // delete notices parked for recovery
  // Mapped data plane (zero-RPC remote reads; all zero when
  // StoreOptions::mapped_remote_reads is off).
  uint64_t mapped_reads = 0;       // remote Gets served as descriptors
  uint64_t mapped_bytes = 0;       // payload bytes those Gets exposed
  uint64_t generation_retries = 0;  // cached lookups voided by a gen bump
  uint64_t mapped_fallbacks = 0;   // client refetches after a mismatch
  // k-way replication (zero when replication_factor is 1 and no client
  // passed the per-object replicate flag).
  uint64_t replicas_total = 0;     // remote copies of locally-owned objects
  uint64_t under_replicated = 0;   // objects below their desired copy count
  uint64_t reheal_copies = 0;      // copies re-created after peer deaths
  uint64_t reheal_bytes = 0;       // payload bytes those copies moved
  // Re-heal queue hygiene: requests coalesced because the node was
  // already queued, requests refused at the queue bound, and the
  // current queue depth.
  uint64_t reheal_deduped = 0;
  uint64_t reheal_dropped = 0;
  uint64_t reheal_queue_depth = 0;
  // End-to-end deadlines and hedged reads (gray-failure handling; see
  // docs/operations.md runbook).
  uint64_t deadline_exceeded = 0;   // ops that exhausted their budget
  uint64_t hedged_reads = 0;        // backup replica reads fired
  uint64_t hedge_wins = 0;          // hedges that answered first
  uint64_t hedge_budget_denied = 0;  // hedges refused by the global cap
  void EncodeTo(wire::Writer& w) const;
  static Result<StoreStats> DecodeFrom(wire::Reader& r);
};

struct StatsReply {
  StoreStats stats;
  void EncodeTo(wire::Writer& w) const;
  static Result<StatsReply> DecodeFrom(wire::Reader& r);
};

// GetStoreStats extension: one row per store shard. The sharded core
// runs N event-loop shards, each owning its own object table, eviction
// state, and allocator arena; this message exposes that state so load
// imbalance and eviction pressure are observable per shard
// (`mdos_cli stats` renders the rows).
struct ShardStatsEntry {
  uint32_t shard = 0;
  uint64_t clients = 0;          // connections homed on this shard
  uint64_t objects_total = 0;
  uint64_t objects_sealed = 0;
  uint64_t bytes_in_use = 0;
  uint64_t arena_capacity = 0;   // bytes of the pool carved to this shard
  uint64_t evictions = 0;
  uint64_t inflight_gets = 0;    // parked Gets awaiting a seal/deadline
  uint64_t spilled_objects = 0;  // objects in this shard's spill file
  uint64_t spilled_bytes = 0;
  uint64_t spill_restores = 0;   // cumulative restores on this shard
  // Egress counters for this shard's connections (see StoreStats).
  uint64_t frames_tx = 0;
  uint64_t frames_coalesced = 0;
  uint64_t writev_calls = 0;
  uint64_t bytes_tx = 0;
  uint64_t egress_blocked_events = 0;
  // Mapped data plane counters for Gets homed on this shard.
  uint64_t mapped_reads = 0;
  uint64_t mapped_bytes = 0;
  uint64_t mapped_fallbacks = 0;
  // Replication state of this shard's object table.
  uint64_t replicas_total = 0;
  uint64_t under_replicated = 0;
  void EncodeTo(wire::Writer& w) const;
  static Result<ShardStatsEntry> DecodeFrom(wire::Reader& r);
};

struct ShardStatsRequest {
  void EncodeTo(wire::Writer& w) const;
  static Result<ShardStatsRequest> DecodeFrom(wire::Reader& r);
};

struct ShardStatsReply {
  std::vector<ShardStatsEntry> shards;
  void EncodeTo(wire::Writer& w) const;
  static Result<ShardStatsReply> DecodeFrom(wire::Reader& r);
};

// Peer-health extension: one row per peer store this node is meshed
// with. `state` mirrors the dist layer's per-peer health machine
// (healthy → suspect → dead, see dist/remote_registry.h); the counters
// let `mdos_cli stats` show which peer is failing and how hard.
struct PeerStatsEntry {
  uint32_t node_id = 0;
  uint8_t state = 0;             // 0 healthy, 1 suspect, 2 dead
  uint64_t failure_streak = 0;   // consecutive failed calls right now
  uint64_t failed_rpcs = 0;      // cumulative failed calls to this peer
  uint64_t reconnects = 0;       // channel redials that succeeded
  uint64_t heartbeats = 0;       // Plasma.Ping calls sent to this peer
  uint64_t queued_notices = 0;   // delete notices parked for recovery
  uint64_t dropped_notices = 0;  // notices discarded (dead peer / cap)
  int64_t ms_since_ok = -1;      // ms since the last successful call
  int64_t ewma_latency_us = -1;  // smoothed call latency; -1 = no sample
  void EncodeTo(wire::Writer& w) const;
  static Result<PeerStatsEntry> DecodeFrom(wire::Reader& r);
};

struct PeerStatsRequest {
  void EncodeTo(wire::Writer& w) const;
  static Result<PeerStatsRequest> DecodeFrom(wire::Reader& r);
};

struct PeerStatsReply {
  std::vector<PeerStatsEntry> peers;
  void EncodeTo(wire::Writer& w) const;
  static Result<PeerStatsReply> DecodeFrom(wire::Reader& r);
};

// ---- subscribe / notifications --------------------------------------------

// Sent on a dedicated connection that will only receive notifications
// from then on (matching upstream Plasma's notification socket).
struct SubscribeRequest {
  std::string subscriber_name;
  void EncodeTo(wire::Writer& w) const;
  static Result<SubscribeRequest> DecodeFrom(wire::Reader& r);
};

struct SubscribeReply {
  Status status;
  void EncodeTo(wire::Writer& w) const;
  static Result<SubscribeReply> DecodeFrom(wire::Reader& r);
};

// Pushed by the store whenever an object is sealed or removed.
struct Notification {
  ObjectId id;
  uint64_t data_size = 0;
  uint64_t metadata_size = 0;
  bool deleted = false;  // false: sealed; true: deleted or evicted
  void EncodeTo(wire::Writer& w) const;
  static Result<Notification> DecodeFrom(wire::Reader& r);
};

// ---- helpers ---------------------------------------------------------------

// Request-tagged framing: every Plasma IPC frame payload is
//   wire::MessageHeader (request_id) || message body.
// Requests carry a client-chosen id; the store echoes it into the reply,
// which lets one connection keep many requests in flight and lets replies
// complete out of order. Server pushes (notifications) use kNoRequestId.
inline constexpr uint64_t kNoRequestId = 0;

// Encodes a Status as (u8 code, string message).
void EncodeStatus(wire::Writer& w, const Status& s);
// Decodes into *out; the returned Status reports decode failure only.
Status DecodeStatus(wire::Reader& r, Status* out);

// Reads the request id off a tagged frame payload.
Result<uint64_t> PeekRequestId(const uint8_t* payload, size_t size);
Result<uint64_t> PeekRequestId(const std::vector<uint8_t>& payload);

// Receives one frame and checks its type; `request_id` (optional)
// receives the frame's tag.
Result<std::vector<uint8_t>> RecvExpect(int fd, MessageType expected,
                                        uint64_t* request_id = nullptr);

}  // namespace mdos::plasma

#include "net/frame.h"

namespace mdos::plasma {

// Encodes the request-tag header + `msg` into `w` (callers that keep a
// scratch Writer per connection Reset() it first and reuse its capacity).
template <typename Message>
void EncodeMessage(wire::Writer& w, uint64_t request_id,
                   const Message& msg) {
  wire::MessageHeader{request_id}.EncodeTo(w);
  msg.EncodeTo(w);
}

// Deadline-stamping variant: `deadline_ms` is the sender's remaining
// end-to-end budget (0 = none) — see wire::MessageHeader.
template <typename Message>
void EncodeMessage(wire::Writer& w, uint64_t request_id,
                   uint64_t deadline_ms, const Message& msg) {
  wire::MessageHeader{request_id, deadline_ms}.EncodeTo(w);
  msg.EncodeTo(w);
}

// Sends `msg` as one request-tagged frame of the given type (blocking;
// the store's event loops use the non-blocking TxQueue path instead).
template <typename Message>
Status SendMessage(int fd, MessageType type, uint64_t request_id,
                   const Message& msg) {
  wire::Writer w;
  EncodeMessage(w, request_id, msg);
  return net::SendFrame(fd, static_cast<uint32_t>(type), w.data(),
                        w.size());
}

// Decodes a tagged payload previously produced by SendMessage (skips the
// message header). The span form decodes straight out of a receive
// buffer (net::FrameView) without copying the payload first.
template <typename Message>
Result<Message> DecodeMessage(const uint8_t* payload, size_t size) {
  wire::Reader r(payload, size);
  auto header = wire::MessageHeader::DecodeFrom(r);
  if (!header.ok()) return header.status();
  return Message::DecodeFrom(r);
}

template <typename Message>
Result<Message> DecodeMessage(const std::vector<uint8_t>& payload) {
  return DecodeMessage<Message>(payload.data(), payload.size());
}

}  // namespace mdos::plasma
