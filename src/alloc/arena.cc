#include "alloc/arena.h"

namespace mdos::alloc {

uint8_t* Arena::Allocate(uint64_t size, uint64_t alignment) {
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    return nullptr;
  }
  uint64_t aligned = (used_ + alignment - 1) & ~(alignment - 1);
  if (aligned > capacity_ || capacity_ - aligned < size) {
    return nullptr;
  }
  uint8_t* out = base_ + aligned;
  used_ = aligned + size;
  return out;
}

}  // namespace mdos::alloc
