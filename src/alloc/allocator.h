// Allocator interface for carving Plasma objects out of the node's
// (disaggregated) memory slab.
//
// Upstream Plasma uses dlmalloc over mmap'd files. The paper replaces it
// with "a simple allocation algorithm that ... allocates a chunk of memory
// to the first available region that can accommodate it", using "an
// ordered map data structure with logarithmic time look-up to keep track
// of the sizes of available regions" (§IV-A1). That allocator is
// `FirstFitAllocator`; `SegregatedFitAllocator` is a dlmalloc-style
// baseline so the paper's allocator trade-off (§V-B future work) can be
// measured (bench_alloc_ablation).
//
// Allocators manage *offsets* into an externally owned slab; they never
// touch the slab memory itself, so the same code manages local DRAM and
// fabric-attached disaggregated regions.
//
// Threading: implementations are NOT internally synchronized. In the
// sharded store each arena (one Allocator over a pool slice, carved by
// ShardedAllocator) is owner state of exactly one shard and is guarded
// by that shard's mutex, like the object table and eviction policy;
// stats() snapshots under the same lock.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace mdos::alloc {

struct Allocation {
  uint64_t offset = 0;
  uint64_t size = 0;  // requested size (not including alignment padding)
};

struct AllocatorStats {
  uint64_t capacity = 0;
  uint64_t bytes_allocated = 0;   // live requested bytes
  uint64_t bytes_reserved = 0;    // live bytes incl. padding
  uint64_t allocations = 0;       // cumulative successful allocs
  uint64_t frees = 0;
  uint64_t failures = 0;          // OOM / fragmentation failures
  uint64_t free_regions = 0;      // current free-list length
  uint64_t largest_free_region = 0;

  // External fragmentation in [0,1]: 1 - largest_free / total_free.
  double ExternalFragmentation() const {
    uint64_t total_free = capacity - bytes_reserved;
    if (total_free == 0) return 0.0;
    return 1.0 -
           static_cast<double>(largest_free_region) /
               static_cast<double>(total_free);
  }
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Reserves `size` bytes aligned to `alignment` (power of two).
  virtual Result<Allocation> Allocate(uint64_t size,
                                      uint64_t alignment = 64) = 0;

  // Releases an allocation previously returned by Allocate, identified by
  // its offset. KeyError if the offset is not a live allocation.
  virtual Status Free(uint64_t offset) = 0;

  virtual AllocatorStats stats() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace mdos::alloc
