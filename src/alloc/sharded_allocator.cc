#include "alloc/sharded_allocator.h"

#include <algorithm>

namespace mdos::alloc {

namespace {
constexpr uint64_t kArenaAlign = 4096;
}  // namespace

ArenaAllocator::ArenaAllocator(std::unique_ptr<Allocator> inner,
                               uint64_t base)
    : inner_(std::move(inner)), base_(base) {}

Result<Allocation> ArenaAllocator::Allocate(uint64_t size,
                                            uint64_t alignment) {
  MDOS_ASSIGN_OR_RETURN(Allocation a, inner_->Allocate(size, alignment));
  a.offset += base_;
  return a;
}

Status ArenaAllocator::Free(uint64_t offset) {
  if (offset < base_) {
    return Status::KeyError("offset " + std::to_string(offset) +
                            " below arena base " + std::to_string(base_));
  }
  return inner_->Free(offset - base_);
}

AllocatorStats ArenaAllocator::stats() const { return inner_->stats(); }

std::string ArenaAllocator::name() const {
  return inner_->name() + "@arena+" + std::to_string(base_);
}

ShardedAllocator::ShardedAllocator(uint64_t capacity, uint32_t shards,
                                   const ArenaFactory& factory)
    : capacity_(capacity) {
  uint64_t max_shards = std::max<uint64_t>(capacity / kMinArenaBytes, 1);
  uint64_t count = std::clamp<uint64_t>(shards, 1, max_shards);
  // Equal 4 KiB-aligned slices; the last arena absorbs the remainder so
  // the arenas exactly tile [0, capacity).
  uint64_t slice = (capacity / count) & ~(kArenaAlign - 1);
  if (slice == 0) {
    slice = capacity;
    count = 1;
  }
  arenas_.reserve(count);
  arena_capacities_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t base = i * slice;
    uint64_t arena_capacity =
        (i + 1 == count) ? capacity - base : slice;
    arenas_.push_back(std::make_unique<ArenaAllocator>(
        factory(arena_capacity), base));
    arena_capacities_.push_back(arena_capacity);
  }
}

AllocatorStats ShardedAllocator::Merge(
    const std::vector<AllocatorStats>& parts) {
  AllocatorStats out;
  for (const AllocatorStats& part : parts) {
    out.capacity += part.capacity;
    out.bytes_allocated += part.bytes_allocated;
    out.bytes_reserved += part.bytes_reserved;
    out.allocations += part.allocations;
    out.frees += part.frees;
    out.failures += part.failures;
    out.free_regions += part.free_regions;
    out.largest_free_region =
        std::max(out.largest_free_region, part.largest_free_region);
  }
  return out;
}

}  // namespace mdos::alloc
