// Arena — bump allocator over a caller-provided byte span.
//
// Used by arrowlite batch construction and by tests that need scratch
// space inside a shared segment without full allocator bookkeeping.
#pragma once

#include <cstdint>

#include "common/status.h"

namespace mdos::alloc {

class Arena {
 public:
  Arena(uint8_t* base, uint64_t capacity)
      : base_(base), capacity_(capacity) {}

  // Returns a pointer to `size` bytes aligned to `alignment`, or nullptr
  // when exhausted.
  uint8_t* Allocate(uint64_t size, uint64_t alignment = 8);

  void Reset() { used_ = 0; }
  uint64_t used() const { return used_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t remaining() const { return capacity_ - used_; }

 private:
  uint8_t* base_;
  uint64_t capacity_;
  uint64_t used_ = 0;
};

}  // namespace mdos::alloc
