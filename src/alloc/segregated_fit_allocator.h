// SegregatedFitAllocator — a dlmalloc-style baseline allocator.
//
// Approximates the structure of Doug Lea's malloc, which upstream Plasma
// uses: free blocks are binned by size class (exact small bins, then
// logarithmically spaced large bins); allocation picks the best-fitting
// block from the smallest non-empty eligible bin, splits the remainder,
// and frees coalesce with both neighbours (boundary-tag equivalent kept in
// external metadata). This is the comparison point for the paper's
// simple first-fit allocator (bench_alloc_ablation, DESIGN.md ablation A).
#pragma once

#include <array>
#include <map>
#include <set>
#include <unordered_map>

#include "alloc/allocator.h"

namespace mdos::alloc {

class SegregatedFitAllocator final : public Allocator {
 public:
  explicit SegregatedFitAllocator(uint64_t capacity);

  Result<Allocation> Allocate(uint64_t size, uint64_t alignment = 64)
      override;
  Status Free(uint64_t offset) override;
  AllocatorStats stats() const override;
  std::string name() const override { return "segregated_fit"; }

  Status CheckInvariants() const;

  // Exposed for tests: bin index for a given block size.
  static int BinIndex(uint64_t size);
  static constexpr int kNumBins = 64;
  // Sizes below this are served from exact-spaced small bins.
  static constexpr uint64_t kSmallThreshold = 512;
  static constexpr uint64_t kSmallGranularity = 16;

 private:
  struct LiveBlock {
    uint64_t block_offset;
    uint64_t block_size;
    uint64_t user_size;
  };

  void InsertFreeBlock(uint64_t offset, uint64_t size);
  void EraseFreeBlock(uint64_t offset, uint64_t size);

  const uint64_t capacity_;
  // Each bin holds (size, offset) pairs ordered so begin() is best fit.
  std::array<std::set<std::pair<uint64_t, uint64_t>>, kNumBins> bins_;
  uint64_t nonempty_bins_mask_ = 0;  // bit i set when bins_[i] non-empty
  std::map<uint64_t, uint64_t> by_offset_;  // offset -> size (free)
  std::unordered_map<uint64_t, LiveBlock> live_;
  AllocatorStats stats_;
};

}  // namespace mdos::alloc
