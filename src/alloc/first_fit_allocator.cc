#include "alloc/first_fit_allocator.h"

#include <string>

namespace mdos::alloc {
namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace

FirstFitAllocator::FirstFitAllocator(uint64_t capacity)
    : capacity_(capacity) {
  stats_.capacity = capacity;
  if (capacity > 0) {
    InsertFreeRegion(0, capacity);
  }
}

void FirstFitAllocator::InsertFreeRegion(uint64_t offset, uint64_t size) {
  by_offset_.emplace(offset, size);
  by_size_.emplace(size, offset);
}

void FirstFitAllocator::EraseFreeRegion(uint64_t offset, uint64_t size) {
  by_offset_.erase(offset);
  auto [begin, end] = by_size_.equal_range(size);
  for (auto it = begin; it != end; ++it) {
    if (it->second == offset) {
      by_size_.erase(it);
      return;
    }
  }
}

Result<Allocation> FirstFitAllocator::Allocate(uint64_t size,
                                               uint64_t alignment) {
  if (size == 0) return Status::Invalid("cannot allocate 0 bytes");
  if (!IsPowerOfTwo(alignment)) {
    return Status::Invalid("alignment must be a power of two");
  }

  // Logarithmic look-up: the first free region whose size can accommodate
  // the request. Alignment padding may make a nominally large-enough
  // region unusable, so we walk forward from lower_bound until one fits —
  // with 64-byte alignment and the padded probe size this terminates on
  // the first or second candidate in practice.
  uint64_t probe = size;
  for (auto it = by_size_.lower_bound(probe); it != by_size_.end(); ++it) {
    uint64_t region_offset = it->second;
    uint64_t region_size = it->first;
    uint64_t user_offset = AlignUp(region_offset, alignment);
    uint64_t padding = user_offset - region_offset;
    if (region_size < padding || region_size - padding < size) continue;

    EraseFreeRegion(region_offset, region_size);

    // Leading splinter (below the aligned start) returns to the free set;
    // the reserved block extent starts at the aligned offset.
    if (padding > 0) {
      InsertFreeRegion(region_offset, padding);
    }
    uint64_t block_size = size;
    uint64_t tail_offset = user_offset + size;
    uint64_t tail_size = region_size - padding - size;
    if (tail_size > 0) {
      InsertFreeRegion(tail_offset, tail_size);
    }

    live_.emplace(user_offset,
                  LiveBlock{user_offset, block_size, size});
    stats_.bytes_allocated += size;
    stats_.bytes_reserved += block_size;
    ++stats_.allocations;
    return Allocation{user_offset, size};
  }

  ++stats_.failures;
  return Status::OutOfMemory(
      "first-fit: no region can accommodate " + std::to_string(size) +
      " bytes (live=" + std::to_string(stats_.bytes_reserved) +
      "/" + std::to_string(capacity_) + ")");
}

Status FirstFitAllocator::Free(uint64_t offset) {
  auto it = live_.find(offset);
  if (it == live_.end()) {
    return Status::KeyError("free of unknown offset " +
                            std::to_string(offset));
  }
  LiveBlock block = it->second;
  live_.erase(it);
  stats_.bytes_allocated -= block.user_size;
  stats_.bytes_reserved -= block.block_size;
  ++stats_.frees;

  uint64_t merged_offset = block.block_offset;
  uint64_t merged_size = block.block_size;

  // Coalesce with the free neighbour above, if adjacent.
  auto above = by_offset_.lower_bound(merged_offset + merged_size);
  if (above != by_offset_.end() &&
      above->first == merged_offset + merged_size) {
    uint64_t next_offset = above->first;
    uint64_t next_size = above->second;
    EraseFreeRegion(next_offset, next_size);
    merged_size += next_size;
  }
  // Coalesce with the free neighbour below, if adjacent.
  auto below = by_offset_.lower_bound(merged_offset);
  if (below != by_offset_.begin()) {
    --below;
    if (below->first + below->second == merged_offset) {
      uint64_t prev_offset = below->first;
      uint64_t prev_size = below->second;
      EraseFreeRegion(prev_offset, prev_size);
      merged_offset = prev_offset;
      merged_size += prev_size;
    }
  }
  InsertFreeRegion(merged_offset, merged_size);
  return Status::OK();
}

AllocatorStats FirstFitAllocator::stats() const {
  AllocatorStats s = stats_;
  s.free_regions = by_offset_.size();
  s.largest_free_region =
      by_size_.empty() ? 0 : by_size_.rbegin()->first;
  return s;
}

Status FirstFitAllocator::CheckInvariants() const {
  if (by_size_.size() != by_offset_.size()) {
    return Status::Invalid("free maps out of sync");
  }
  // Free regions and live blocks must exactly tile [0, capacity) with no
  // overlaps and no adjacent free regions (Free must coalesce).
  std::map<uint64_t, std::pair<uint64_t, bool>> extents;  // offset->(size,free)
  for (const auto& [offset, size] : by_offset_) {
    extents.emplace(offset, std::make_pair(size, true));
  }
  for (const auto& [user_offset, block] : live_) {
    (void)user_offset;
    extents.emplace(block.block_offset,
                    std::make_pair(block.block_size, false));
  }
  uint64_t cursor = 0;
  bool prev_free = false;
  for (const auto& [offset, info] : extents) {
    if (offset != cursor) {
      return Status::Invalid("gap or overlap at offset " +
                             std::to_string(cursor));
    }
    if (prev_free && info.second) {
      return Status::Invalid("uncoalesced adjacent free regions at " +
                             std::to_string(offset));
    }
    cursor = offset + info.first;
    prev_free = info.second;
  }
  if (cursor != capacity_) {
    return Status::Invalid("extents do not cover capacity");
  }
  return Status::OK();
}

}  // namespace mdos::alloc
