// FirstFitAllocator — the paper's replacement for dlmalloc (§IV-A1).
//
// Free regions are tracked in two ordered maps:
//   by_size_:   multimap size → offset; Allocate takes lower_bound(size),
//               i.e. the first (smallest) region that can accommodate the
//               request, in logarithmic time as the paper describes.
//   by_offset_: map offset → size; Free coalesces with both neighbours in
//               logarithmic time.
// Live allocations are recorded so Free can validate its argument and so
// stats are exact. The allocator deliberately ignores locality and
// higher-order anti-fragmentation strategies — the paper notes it
// "surrenders some benefits to the original dlmalloc library" and we keep
// that fidelity (the baseline allocator exists for comparison).
#pragma once

#include <map>
#include <unordered_map>

#include "alloc/allocator.h"

namespace mdos::alloc {

class FirstFitAllocator final : public Allocator {
 public:
  // Manages offsets [0, capacity).
  explicit FirstFitAllocator(uint64_t capacity);

  Result<Allocation> Allocate(uint64_t size, uint64_t alignment = 64)
      override;
  Status Free(uint64_t offset) override;
  AllocatorStats stats() const override;
  std::string name() const override { return "first_fit_ordered_map"; }

  // Test hook: verifies internal invariants (maps consistent, no overlap,
  // full coverage). Returns Invalid with a description on violation.
  Status CheckInvariants() const;

 private:
  struct LiveBlock {
    uint64_t block_offset;  // block start (≤ aligned user offset)
    uint64_t block_size;    // full reserved extent
    uint64_t user_size;     // requested size
  };

  void InsertFreeRegion(uint64_t offset, uint64_t size);
  void EraseFreeRegion(uint64_t offset, uint64_t size);

  const uint64_t capacity_;
  std::multimap<uint64_t, uint64_t> by_size_;  // size -> offset
  std::map<uint64_t, uint64_t> by_offset_;     // offset -> size
  // Keyed by the *user-visible* (aligned) offset.
  std::unordered_map<uint64_t, LiveBlock> live_;
  AllocatorStats stats_;
};

}  // namespace mdos::alloc
