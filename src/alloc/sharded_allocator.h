// ShardedAllocator — carves one contiguous (disaggregated) memory pool
// into N per-shard arenas, each managed by an independent inner
// allocator.
//
// The sharded store core runs one event-loop thread per shard; giving
// every shard a private arena means allocation and eviction never
// contend across shards (the free-list of shard 0 is untouched by a
// Create handled on shard 3). Offsets handed out by an arena are
// *pool-relative* — the facade adds the arena base — so the rest of the
// system (object table entries, wire protocol, fabric regions, client
// mmaps) is oblivious to the carving.
//
// Thread-safety: none here, by design. Each arena is owned by exactly
// one store shard and is only ever touched under that shard's mutex;
// putting a second lock in the allocator would just double the cost.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "alloc/allocator.h"

namespace mdos::alloc {

// Allocator facade over one arena [base, base + capacity) of the pool.
// The inner allocator manages arena-relative offsets; this class
// translates them to pool-relative. The base is 4 KiB-aligned, so any
// alignment the inner allocator honours up to 4 KiB survives the
// translation.
class ArenaAllocator : public Allocator {
 public:
  ArenaAllocator(std::unique_ptr<Allocator> inner, uint64_t base);

  Result<Allocation> Allocate(uint64_t size,
                              uint64_t alignment = 64) override;
  Status Free(uint64_t offset) override;
  AllocatorStats stats() const override;
  std::string name() const override;

  uint64_t base() const { return base_; }

 private:
  std::unique_ptr<Allocator> inner_;
  uint64_t base_ = 0;
};

class ShardedAllocator {
 public:
  using ArenaFactory =
      std::function<std::unique_ptr<Allocator>(uint64_t arena_capacity)>;

  // Every arena must be able to hold at least one real object; requests
  // for more shards than `capacity / kMinArenaBytes` are clamped.
  static constexpr uint64_t kMinArenaBytes = 64 * 1024;

  // Carves `capacity` into (up to) `shards` arenas — bases 4 KiB-aligned,
  // the last arena absorbing the rounding remainder — and builds one
  // inner allocator per arena via `factory`.
  ShardedAllocator(uint64_t capacity, uint32_t shards,
                   const ArenaFactory& factory);

  uint32_t shard_count() const {
    return static_cast<uint32_t>(arenas_.size());
  }
  uint64_t capacity() const { return capacity_; }

  Allocator& arena(uint32_t shard) { return *arenas_[shard]; }
  uint64_t arena_capacity(uint32_t shard) const {
    return arena_capacities_[shard];
  }

  // Combines per-arena statistics into one pool-wide view (sums, except
  // largest_free_region which is the max — a cross-arena allocation is
  // impossible, so that is the true largest satisfiable request).
  static AllocatorStats Merge(const std::vector<AllocatorStats>& parts);

 private:
  uint64_t capacity_ = 0;
  std::vector<std::unique_ptr<ArenaAllocator>> arenas_;
  std::vector<uint64_t> arena_capacities_;
};

}  // namespace mdos::alloc
