#include "alloc/segregated_fit_allocator.h"

#include <bit>
#include <string>

namespace mdos::alloc {
namespace {

bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

uint64_t AlignUp(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

}  // namespace

int SegregatedFitAllocator::BinIndex(uint64_t size) {
  // Bins 0..31: exact 16-byte-spaced classes up to kSmallThreshold.
  if (size < kSmallThreshold) {
    return static_cast<int>(size / kSmallGranularity);
  }
  // Bins 32..63: one bin per power of two ≥ 512.
  int log2 = 63 - std::countl_zero(size);
  int idx = 32 + (log2 - 9);
  return idx >= kNumBins ? kNumBins - 1 : idx;
}

SegregatedFitAllocator::SegregatedFitAllocator(uint64_t capacity)
    : capacity_(capacity) {
  stats_.capacity = capacity;
  if (capacity > 0) {
    InsertFreeBlock(0, capacity);
  }
}

void SegregatedFitAllocator::InsertFreeBlock(uint64_t offset,
                                             uint64_t size) {
  int bin = BinIndex(size);
  bins_[bin].emplace(size, offset);
  nonempty_bins_mask_ |= (uint64_t{1} << bin);
  by_offset_.emplace(offset, size);
}

void SegregatedFitAllocator::EraseFreeBlock(uint64_t offset,
                                            uint64_t size) {
  int bin = BinIndex(size);
  bins_[bin].erase({size, offset});
  if (bins_[bin].empty()) {
    nonempty_bins_mask_ &= ~(uint64_t{1} << bin);
  }
  by_offset_.erase(offset);
}

Result<Allocation> SegregatedFitAllocator::Allocate(uint64_t size,
                                                    uint64_t alignment) {
  if (size == 0) return Status::Invalid("cannot allocate 0 bytes");
  if (!IsPowerOfTwo(alignment)) {
    return Status::Invalid("alignment must be a power of two");
  }

  // Scan bins from the request's class upward; the bitmask makes finding
  // the next non-empty bin O(1) (this is dlmalloc's binmap trick).
  int start_bin = BinIndex(size);
  uint64_t mask = nonempty_bins_mask_ & ~((uint64_t{1} << start_bin) - 1);
  while (mask != 0) {
    int bin = std::countr_zero(mask);
    mask &= mask - 1;
    // Within a bin, entries are ordered by size then offset: begin() from
    // the first eligible entry is the best fit in this class.
    auto& entries = bins_[bin];
    for (auto it = entries.lower_bound({size, 0}); it != entries.end();
         ++it) {
      uint64_t region_size = it->first;
      uint64_t region_offset = it->second;
      uint64_t user_offset = AlignUp(region_offset, alignment);
      uint64_t padding = user_offset - region_offset;
      if (region_size < padding || region_size - padding < size) continue;

      EraseFreeBlock(region_offset, region_size);
      if (padding > 0) InsertFreeBlock(region_offset, padding);
      uint64_t tail_size = region_size - padding - size;
      if (tail_size > 0) InsertFreeBlock(user_offset + size, tail_size);

      live_.emplace(user_offset, LiveBlock{user_offset, size, size});
      stats_.bytes_allocated += size;
      stats_.bytes_reserved += size;
      ++stats_.allocations;
      return Allocation{user_offset, size};
    }
  }

  ++stats_.failures;
  return Status::OutOfMemory(
      "segregated-fit: no block for " + std::to_string(size) + " bytes");
}

Status SegregatedFitAllocator::Free(uint64_t offset) {
  auto it = live_.find(offset);
  if (it == live_.end()) {
    return Status::KeyError("free of unknown offset " +
                            std::to_string(offset));
  }
  LiveBlock block = it->second;
  live_.erase(it);
  stats_.bytes_allocated -= block.user_size;
  stats_.bytes_reserved -= block.block_size;
  ++stats_.frees;

  uint64_t merged_offset = block.block_offset;
  uint64_t merged_size = block.block_size;

  auto above = by_offset_.find(merged_offset + merged_size);
  if (above != by_offset_.end()) {
    uint64_t next_size = above->second;
    EraseFreeBlock(above->first, next_size);
    merged_size += next_size;
  }
  auto below = by_offset_.lower_bound(merged_offset);
  if (below != by_offset_.begin()) {
    --below;
    if (below->first + below->second == merged_offset) {
      uint64_t prev_offset = below->first;
      uint64_t prev_size = below->second;
      EraseFreeBlock(prev_offset, prev_size);
      merged_offset = prev_offset;
      merged_size += prev_size;
    }
  }
  InsertFreeBlock(merged_offset, merged_size);
  return Status::OK();
}

AllocatorStats SegregatedFitAllocator::stats() const {
  AllocatorStats s = stats_;
  s.free_regions = by_offset_.size();
  uint64_t largest = 0;
  for (const auto& [offset, size] : by_offset_) {
    (void)offset;
    if (size > largest) largest = size;
  }
  s.largest_free_region = largest;
  return s;
}

Status SegregatedFitAllocator::CheckInvariants() const {
  size_t bin_total = 0;
  for (int i = 0; i < kNumBins; ++i) {
    bin_total += bins_[i].size();
    bool mask_bit = (nonempty_bins_mask_ >> i) & 1;
    if (mask_bit != !bins_[i].empty()) {
      return Status::Invalid("bin mask out of sync at bin " +
                             std::to_string(i));
    }
    for (const auto& [size, offset] : bins_[i]) {
      if (BinIndex(size) != i) {
        return Status::Invalid("block in wrong bin");
      }
      auto it = by_offset_.find(offset);
      if (it == by_offset_.end() || it->second != size) {
        return Status::Invalid("bin entry missing from offset map");
      }
    }
  }
  if (bin_total != by_offset_.size()) {
    return Status::Invalid("bin/offset map size mismatch");
  }
  std::map<uint64_t, std::pair<uint64_t, bool>> extents;
  for (const auto& [offset, size] : by_offset_) {
    extents.emplace(offset, std::make_pair(size, true));
  }
  for (const auto& [user_offset, block] : live_) {
    (void)user_offset;
    extents.emplace(block.block_offset,
                    std::make_pair(block.block_size, false));
  }
  uint64_t cursor = 0;
  bool prev_free = false;
  for (const auto& [offset, info] : extents) {
    if (offset != cursor) {
      return Status::Invalid("gap or overlap at offset " +
                             std::to_string(cursor));
    }
    if (prev_free && info.second) {
      return Status::Invalid("uncoalesced adjacent free blocks");
    }
    cursor = offset + info.first;
    prev_free = info.second;
  }
  if (cursor != capacity_) {
    return Status::Invalid("extents do not cover capacity");
  }
  return Status::OK();
}

}  // namespace mdos::alloc
