"""Layering DAG checker.

Derives the `#include "..."` graph of the source tree and enforces the
layer order declared in tools/mdos_check/layers.toml: a file in layer L
may include only files in layers with a strictly lower level, or its own
layer. Cycles between subsystem directories are reported even if the
config were to permit the edge (the declared order must itself stay a
DAG against reality).

The include graph comes from the sources themselves rather than from
-I resolution: this project's convention is that every intra-project
include is written source-root-relative ("plasma/store.h"), so the first
path segment names the subsystem. System includes (<...>) are ignored.
"""

from __future__ import annotations

import os
import re
import tomllib

from findings import Finding

CHECK = "layering"

# [ \t]* (not \s*): a \s* after ^ would swallow the newline of a
# preceding blank line in MULTILINE mode and shift the reported line.
INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"',
                        re.MULTILINE)


def load_layers(path):
    with open(path, "rb") as f:
        data = tomllib.load(f)
    levels = {}
    for entry in data.get("layer", []):
        for name in entry["dirs"]:
            levels[name] = int(entry["level"])
    return levels


def run(source_set, layers_path) -> list[Finding]:
    levels = load_layers(layers_path)
    findings = []
    edges = {}  # (from_dir, to_dir) -> first (path, line, include)

    for path, sf in sorted(source_set.sources.items()):
        rel = source_set.relpath(path)
        from_dir = rel.split(os.sep)[0]
        if from_dir not in levels:
            findings.append(Finding(
                path, 1, CHECK,
                f"subsystem '{from_dir}' is not declared in layers.toml "
                f"— add it to a layer before using it"))
            continue
        # Comment-stripped view with string literals intact: blanked-out
        # includes don't count, but the include paths survive (sf.code
        # would blank them — see SourceFile.code_keep_strings).
        code = sf.code_keep_strings
        for m in INCLUDE_RE.finditer(code):
            target = m.group(1)
            line = code[:m.start()].count("\n") + 1
            to_dir = target.split("/")[0]
            if "/" not in target:
                # same-directory include without a subsystem prefix
                continue
            if to_dir not in levels:
                findings.append(Finding(
                    path, line, CHECK,
                    f"include \"{target}\": subsystem '{to_dir}' is not "
                    f"declared in layers.toml"))
                continue
            edges.setdefault((from_dir, to_dir), (path, line, target))

    # Level discipline: every edge must go down (or stay inside one
    # subsystem directory).
    for (a, b), (path, line, target) in sorted(edges.items()):
        if a == b:
            continue
        if levels[b] >= levels[a]:
            kind = ("cycle-inducing (same level)"
                    if levels[b] == levels[a] else "upward")
            if source_set.suppressed(path, line, CHECK):
                continue
            findings.append(Finding(
                path, line, CHECK,
                f"{kind} include: {a} (level {levels[a]}) -> "
                f"\"{target}\" in {b} (level {levels[b]}); the declared "
                f"order is {_order_str(levels)}"))

    # Cycle detection over subsystem edges (belt and braces: a config
    # that legalized a cycle would still fail here).
    graph = {}
    for (a, b) in edges:
        if a != b:
            graph.setdefault(a, set()).add(b)
    cycle = _find_cycle(graph)
    if cycle:
        a = cycle[0]
        path, line, target = edges[(a, cycle[1])]
        findings.append(Finding(
            path, line, CHECK,
            f"subsystem include cycle: {' -> '.join(cycle)}"))

    return findings


def _order_str(levels):
    by_level = {}
    for name, lvl in levels.items():
        by_level.setdefault(lvl, []).append(name)
    return " < ".join("/".join(sorted(names))
                      for _, names in sorted(by_level.items()))


def _find_cycle(graph):
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    stack = []

    def visit(n):
        color[n] = GRAY
        stack.append(n)
        for m in sorted(graph.get(n, ())):
            if color.get(m, WHITE) == GRAY:
                i = stack.index(m)
                return stack[i:] + [m]
            if color.get(m, WHITE) == WHITE:
                found = visit(m)
                if found:
                    return found
        stack.pop()
        color[n] = BLACK
        return None

    for n in sorted(graph):
        if color[n] == WHITE:
            found = visit(n)
            if found:
                return found
    return None
