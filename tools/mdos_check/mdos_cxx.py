"""Lexer-grade C++ source model for the mdos-check analyzers.

mdos-check deliberately does not depend on libclang: the container and CI
images this repo builds in carry a full C++ toolchain but no libclang C
API or `clang.cindex` Python bindings, and the project policy is to add
no new dependencies. Instead this module gives the four checkers a
shared, deterministic view of the sources that is precise enough for
project-semantic rules:

  * comment/string-aware blanking (so tokens never come from literals),
  * suppression-comment collection (`// mdos-check: allow-<check>(why)`),
  * a tokenizer with line numbers,
  * a scope-tracking function extractor (namespaces, classes, function
    definitions vs declarations, qualified names, statement prefixes for
    return types and annotation macros),
  * call-site extraction with receiver/qualifier context and lexical
    MutexLock scopes (for the held-across-blocking-call rule),
  * enum parsing (for the protocol exhaustiveness checker).

The model is intentionally an over-approximation in places (declarations
of the form `Type name(arg);` look like calls; method calls resolve by
name, not by type) — each checker narrows it with explicit config so the
real tree stays clean without silencing the violations the checkers
exist to catch. Everything here is plain standard-library Python.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

# ---------------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------------

# `// mdos-check: allow-<check>(<reason>)` silences one finding of
# <check> on the same line, or on the following line when the comment
# stands alone. The reason is mandatory: a suppression without a
# rationale is itself a finding (the driver enforces this).
SUPPRESSION_RE = re.compile(
    r"mdos-check:\s*allow-([a-z-]+)\(([^)]*)\)")

KEYWORDS = {
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof",
    "alignas", "decltype", "typeid", "static_assert", "new", "delete",
    "throw", "try", "catch", "const", "constexpr", "consteval",
    "constinit", "static", "inline", "virtual", "override", "final",
    "explicit", "friend", "public", "private", "protected", "using",
    "typedef", "template", "typename", "class", "struct", "union",
    "enum", "namespace", "operator", "noexcept", "volatile", "mutable",
    "extern", "register", "thread_local", "co_await", "co_return",
    "co_yield", "requires", "concept", "auto", "void", "bool", "char",
    "short", "int", "long", "float", "double", "signed", "unsigned",
    "true", "false", "nullptr", "this",
}

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"          # identifier
    r"|\d[\dxXbB'.a-fA-F]*"            # number (loose)
    r"|::|->\*?|\.\*|\[\[|\]\]|<<=|>>=|<=>|\+\+|--|<<|>>|<=|>=|==|!="
    r"|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\.\.\."
    r"|[{}()\[\];,.:=<>!&|*+\-/%^?~#]"
    r"|\n")


@dataclasses.dataclass
class Token:
    text: str
    line: int

    @property
    def is_id(self) -> bool:
        c = self.text[0]
        return (c.isalpha() or c == "_") and self.text not in KEYWORDS

    @property
    def is_word(self) -> bool:
        c = self.text[0]
        return c.isalpha() or c == "_"


@dataclasses.dataclass
class CallSite:
    name: str                 # last identifier before '('
    qualifier: str            # 'A::B' for A::B::name(...), else ''
    receiver: str             # 'x' for x.name(...) / x->name(...), else ''
    line: int                 # line of the name token
    chain_start: int          # token index where the receiver chain begins
    stmt_position: bool       # the chain starts a statement
    void_cast: bool           # chain is preceded by a (void) cast
    under_locks: tuple        # names of MutexLock locals lexically alive

    def spelled(self) -> str:
        if self.receiver:
            return f"{self.receiver}.{self.name}"
        if self.qualifier:
            return f"{self.qualifier}::{self.name}"
        return self.name


@dataclasses.dataclass
class FunctionDef:
    name: str                 # last segment ('ShardLoop')
    qualname: str             # scope-qualified ('mdos::plasma::Store::ShardLoop')
    path: str
    line: int
    end_line: int
    annotations: frozenset    # marker macros seen in the statement prefix
    returns_fallible: bool    # return type mentions Status / Result
    is_definition: bool       # has a body (False: declaration only)
    calls: list = dataclasses.field(default_factory=list)


class SourceFile:
    def __init__(self, path: str, text: str):
        self.path = path
        self.raw = text
        self.code, self.suppressions = _blank(text)
        self.tokens = _tokenize(self.code)
        self.functions: list[FunctionDef] = []
        self._code_keep_strings = None
        _parse(self)

    @property
    def code_keep_strings(self) -> str:
        """Comments blanked, string/char literals PRESERVED.

        `self.code` blanks literals too (right for the token stream, where
        string contents must never look like identifiers), but that erases
        `#include "plasma/store.h"` paths — the layering checker needs
        this view instead.
        """
        if self._code_keep_strings is None:
            self._code_keep_strings = _strip_comments(self.raw)
        return self._code_keep_strings

    def is_suppressed(self, line: int, check: str) -> bool:
        """A marker on `line` or on the line above covers `line`."""
        for probe in (line, line - 1):
            if check in {c for c, _ in self.suppressions.get(probe, ())}:
                return True
        return False


def load(path: str) -> SourceFile:
    with open(path, encoding="utf-8", errors="replace") as f:
        return SourceFile(path, f.read())


# ---------------------------------------------------------------------------
# Blanking + tokenizing
# ---------------------------------------------------------------------------

def _blank(text: str):
    """Blanks comments and string/char literals, preserving layout.

    Returns (code, suppressions) where suppressions maps line number to a
    tuple of (check, reason) markers found in comments on that line.
    """
    out = []
    suppressions: dict[int, list] = {}
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            for m in SUPPRESSION_RE.finditer(text[i:j]):
                suppressions.setdefault(line, []).append(
                    (m.group(1), m.group(2).strip()))
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            for m in SUPPRESSION_RE.finditer(chunk):
                sub_line = line + chunk[:m.start()].count("\n")
                suppressions.setdefault(sub_line, []).append(
                    (m.group(1), m.group(2).strip()))
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            line += chunk.count("\n")
            i = j + 2
        elif c == '"':
            if out and text[i - 1] == "R":  # raw string R"delim( ... )delim"
                close = text.find("(", i)
                delim = text[i + 1:close] if close != -1 else ""
                end = text.find(f"){delim}\"", close)
                end = n if end == -1 else end + len(delim) + 2
                chunk = text[i:end]
                out.append('"' + "".join(
                    "\n" if ch == "\n" else " " for ch in chunk[1:-1]) + '"')
                line += chunk.count("\n")
                i = end
            else:
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                out.append('"' + " " * (j - i - 1) + '"')
                i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("'" + " " * (j - i - 1) + "'")
            i = j + 1
        else:
            if c == "\n":
                line += 1
            out.append(c)
            i += 1
    return "".join(out), {k: tuple(v) for k, v in suppressions.items()}


def _strip_comments(text: str) -> str:
    """Comments to spaces (newlines kept), everything else verbatim.

    Walks string/char literals so a `//` inside a literal is not taken
    for a comment, but keeps their contents — unlike _blank.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i:j + 2]
            out.append("".join("\n" if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1])
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append(text[i:j + 1])
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _tokenize(code: str) -> list[Token]:
    tokens = []
    line = 1
    for m in _TOKEN_RE.finditer(code):
        t = m.group(0)
        if t == "\n":
            line += 1
            continue
        tokens.append(Token(t, line))
    return tokens


# ---------------------------------------------------------------------------
# Scope-tracking parse
# ---------------------------------------------------------------------------

# Macro markers whose presence in a declaration prefix the checkers care
# about. Collected verbatim into FunctionDef.annotations.
ANNOTATION_MACROS = {"MDOS_EVENT_LOOP_CONTEXT", "NO_THREAD_SAFETY_ANALYSIS"}

# Tokens that may sit between `)` and the body `{` of a definition.
_POST_PAREN_WORDS = {
    "const", "noexcept", "override", "final", "mutable", "try",
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "ACQUIRE", "ACQUIRE_SHARED",
    "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE", "ASSERT_CAPABILITY",
    "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS",
    "MDOS_EVENT_LOOP_CONTEXT",
}

_STMT_BOUNDARY = {";", "{", "}", ":", "else", "do"}


def _match_paren(tokens, i):
    """tokens[i] == '('; returns index just past the matching ')'."""
    depth = 0
    while i < len(tokens):
        t = tokens[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(tokens)


def _qualified_prefix(tokens, i):
    """Walks back over `id :: id :: ... ::` ending at index i (the name
    token). Returns (start_index, qualifier_text)."""
    parts = []
    j = i
    while j >= 2 and tokens[j - 1].text == "::" and tokens[j - 2].is_word:
        parts.append(tokens[j - 2].text)
        j -= 2
        # skip template args heuristically: Foo<T>::bar — walk over <...>
        if j >= 1 and tokens[j].text == ">":
            depth = 0
            k = j
            while k >= 0:
                if tokens[k].text == ">":
                    depth += 1
                elif tokens[k].text == "<":
                    depth -= 1
                    if depth == 0:
                        break
                k -= 1
            if k >= 1 and tokens[k - 1].is_word:
                j = k - 1
    return j, "::".join(reversed(parts))


def _class_name_of(tokens, i):
    """tokens[i] is 'class'/'struct'/'union'; returns (name, body_index)
    where body_index is the index of '{', or (None, advance_index) for
    declarations/variables."""
    j = i + 1
    name = None
    while j < len(tokens):
        t = tokens[j]
        if t.text == "[[":
            while j < len(tokens) and tokens[j].text != "]]":
                j += 1
            j += 1
            continue
        if t.text == "(":  # attribute macro like CAPABILITY("mutex")
            j = _match_paren(tokens, j)
            continue
        if t.is_word and t.text not in ("final", "alignas"):
            name = t.text
            j += 1
            continue
        if t.text == ":":  # base clause: skip to '{'
            while j < len(tokens) and tokens[j].text != "{":
                if tokens[j].text == "(":
                    j = _match_paren(tokens, j)
                else:
                    j += 1
            continue
        if t.text == "{":
            return name, j
        if t.text in (";", "=", "<", "*", "&", ")", ","):
            return None, j  # fwd decl, template param, or variable decl
        j += 1
    return None, j


def _parse(sf: SourceFile):
    tokens = sf.tokens
    n = len(tokens)
    # Scope stack: list of (kind, name_or_fn) where kind in
    # {namespace, class, function, block, enum}.
    scopes: list = []
    # Pending classification for the next '{'.
    pending: Optional[tuple] = None
    stmt_start = 0  # token index where the current statement prefix began
    ternary_depth = 0  # open '?' operators whose ':' is still pending
    lock_stack: list = []  # (lock_name, scope_depth_at_declaration)

    def in_function():
        for kind, payload in reversed(scopes):
            if kind == "function":
                return payload
            if kind in ("class", "namespace"):
                return None
        return None

    def scope_qual():
        parts = []
        for kind, payload in scopes:
            if kind in ("namespace", "class") and payload:
                parts.append(payload)
        return parts

    i = 0
    while i < n:
        tok = tokens[i]
        t = tok.text

        if t == "namespace":
            j = i + 1
            name_parts = []
            while j < n and (tokens[j].is_word or tokens[j].text == "::"):
                if tokens[j].is_word:
                    name_parts.append(tokens[j].text)
                j += 1
            if j < n and tokens[j].text == "{":
                pending = ("namespace", "::".join(name_parts))
            elif j < n and tokens[j].text == "=":
                while j < n and tokens[j].text != ";":
                    j += 1
            i = j
            stmt_start = i
            continue

        if t in ("class", "struct", "union") and in_function() is None:
            # `enum class` is handled by the 'enum' branch below.
            name, j = _class_name_of(tokens, i)
            if name is not None and j < n and tokens[j].text == "{":
                pending = ("class", name)
                i = j
                continue
            i = j
            continue

        if t == "enum" and in_function() is None:
            j = i + 1
            while j < n and tokens[j].text not in ("{", ";"):
                j += 1
            if j < n and tokens[j].text == "{":
                pending = ("enum", None)
                i = j
                continue
            i = j
            continue

        if t == "{":
            scopes.append(pending if pending else ("block", None))
            pending = None
            stmt_start = i + 1
            i += 1
            continue

        if t == "}":
            if scopes:
                kind, payload = scopes.pop()
                if kind == "function" and payload is not None:
                    payload.end_line = tok.line
            while lock_stack and lock_stack[-1][1] > len(scopes):
                lock_stack.pop()
            stmt_start = i + 1
            i += 1
            continue

        if t == "?":
            # Ternary: its ':' is an operator, not a statement boundary.
            ternary_depth += 1
            i += 1
            continue

        if t == ":" and ternary_depth > 0:
            ternary_depth -= 1
            i += 1
            continue

        if t == ";":
            ternary_depth = 0
            stmt_start = i + 1
            i += 1
            continue

        if t == ":" or t in ("public", "private", "protected"):
            stmt_start = i + 1
            i += 1
            continue

        fn = in_function()

        # MutexLock lexical scope: `MutexLock name(...)` / `MutexLock name{...}`.
        if fn is not None and t == "MutexLock" and i + 1 < n and \
                tokens[i + 1].is_word:
            lock_stack.append((tokens[i + 1].text, len(scopes)))
            i += 2
            continue

        if tok.is_word and i + 1 < n and tokens[i + 1].text == "(":
            if fn is not None:
                if tok.is_id:
                    _record_call(sf, fn, tokens, i, stmt_start, lock_stack)
                i = _skip_into_args(tokens, i + 1)
                continue
            # Possible function definition/declaration at namespace/class
            # scope.
            consumed, new_pending = _try_function(
                sf, tokens, i, stmt_start, scope_qual())
            if consumed is not None:
                if new_pending is not None:
                    pending = new_pending
                i = consumed
                if new_pending is None:
                    stmt_start = i
                continue

        i += 1

    # close any dangling function line info
    for kind, payload in scopes:
        if kind == "function" and payload is not None and \
                payload.end_line == 0:
            payload.end_line = tokens[-1].line if tokens else payload.line


def _skip_into_args(tokens, open_paren_index):
    """Advance just past the '(' so nested calls inside the argument list
    are still scanned."""
    return open_paren_index + 1


def _record_call(sf, fn, tokens, i, stmt_start, lock_stack):
    name_tok = tokens[i]
    qualifier = ""
    receiver = ""
    start, qualifier = _qualified_prefix(tokens, i)
    # receiver: walk back over '.' / '->' chains from the qualified
    # start. `receiver` stays the IMMEDIATE one (`poller` in
    # `shard.poller.Wait`); chain_start keeps walking to the front of
    # the whole chain for stmt-position/void-cast classification.
    j = start
    chain_start = start
    while j >= 2 and tokens[j - 1].text in (".", "->") and \
            (tokens[j - 2].is_word or tokens[j - 2].text in (")", "]")):
        if tokens[j - 2].is_word:
            if not receiver:
                receiver = tokens[j - 2].text
            j2, _ = _qualified_prefix(tokens, j - 2)
            chain_start = j2
            j = j2
        else:
            if not receiver:
                receiver = "<expr>"
            chain_start = j - 2
            break
    prev = tokens[chain_start - 1].text if chain_start > 0 else ";"
    void_cast = (chain_start >= 3 and
                 tokens[chain_start - 1].text == ")" and
                 tokens[chain_start - 2].text == "void" and
                 tokens[chain_start - 3].text == "(")
    stmt_position = (chain_start == stmt_start or
                     prev in (";", "{", "}", "else", "do"))
    fn.calls.append(CallSite(
        name=name_tok.text, qualifier=qualifier, receiver=receiver,
        line=name_tok.line, chain_start=chain_start,
        stmt_position=stmt_position, void_cast=void_cast,
        under_locks=tuple(name for name, _ in lock_stack)))


def _try_function(sf, tokens, i, stmt_start, scope_parts):
    """tokens[i] is an identifier followed by '(' at namespace/class
    scope. Returns (next_index, pending_scope) when a function
    definition or declaration was recognized, else (None, None)."""
    n = len(tokens)
    name_tok = tokens[i]
    start, qualifier = _qualified_prefix(tokens, i)
    # Destructor: ~Name
    name = name_tok.text
    if start > 0 and tokens[start - 1].text == "~":
        name = "~" + name
        start -= 1

    after = _match_paren(tokens, i + 1)
    j = after
    while j < n:
        t = tokens[j]
        if t.text in _POST_PAREN_WORDS:
            j += 1
            if j < n and tokens[j].text == "(":
                j = _match_paren(tokens, j)
            continue
        if t.text == "[[":
            while j < n and tokens[j].text != "]]":
                j += 1
            j += 1
            continue
        if t.text == "->":  # trailing return type
            j += 1
            while j < n and tokens[j].text not in ("{", ";"):
                if tokens[j].text == "(":
                    j = _match_paren(tokens, j)
                else:
                    j += 1
            continue
        if t.text == ":":  # ctor-initializer list
            j += 1
            while j < n:
                if tokens[j].text == "(":
                    j = _match_paren(tokens, j)
                elif tokens[j].text == "{":
                    # brace-init `field_{...}` is preceded by a word/'>';
                    # the body '{' is preceded by ')' or '}' or an id-less
                    # separator.
                    if tokens[j - 1].is_word or tokens[j - 1].text == ">":
                        depth = 0
                        while j < n:
                            if tokens[j].text == "{":
                                depth += 1
                            elif tokens[j].text == "}":
                                depth -= 1
                                if depth == 0:
                                    break
                            j += 1
                        j += 1
                    else:
                        break
                elif tokens[j].text == ";":
                    break
                else:
                    j += 1
            continue
        break
    is_def = j < n and tokens[j].text == "{"
    is_decl = j < n and tokens[j].text in (";", ",", "=")
    if not is_def and not is_decl:
        return None, None

    prefix = tokens[stmt_start:start]
    prefix_words = {p.text for p in prefix}
    if "return" in prefix_words or "=" in {p.text for p in prefix}:
        return None, None
    annotations = frozenset(prefix_words & ANNOTATION_MACROS |
                            ({"MDOS_EVENT_LOOP_CONTEXT"}
                             if any(tokens[k].text == "MDOS_EVENT_LOOP_CONTEXT"
                                    for k in range(after, j))
                             else set()))
    returns_fallible = bool(prefix_words & {"Status", "Result"})
    qual = "::".join(scope_parts + ([qualifier] if qualifier else []) +
                     [name])
    fd = FunctionDef(
        name=name, qualname=qual, path=sf.path, line=name_tok.line,
        end_line=0 if is_def else name_tok.line,
        annotations=annotations, returns_fallible=returns_fallible,
        is_definition=is_def)
    sf.functions.append(fd)
    if is_def:
        return j, ("function", fd)
    # declaration: skip past the terminator
    while j < n and tokens[j].text != ";":
        j += 1
    return j + 1, None


# ---------------------------------------------------------------------------
# Enum parsing
# ---------------------------------------------------------------------------

def parse_enum(sf: SourceFile, enum_name: str):
    """Returns [(enumerator, line)] for `enum [class] <enum_name>`."""
    tokens = sf.tokens
    n = len(tokens)
    for i in range(n - 2):
        if tokens[i].text != "enum":
            continue
        j = i + 1
        if j < n and tokens[j].text in ("class", "struct"):
            j += 1
        if j >= n or tokens[j].text != enum_name:
            continue
        while j < n and tokens[j].text != "{":
            j += 1
        out = []
        j += 1
        expect_name = True
        depth = 1
        while j < n and depth > 0:
            t = tokens[j]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
            elif depth == 1:
                if expect_name and t.is_word:
                    out.append((t.text, t.line))
                    expect_name = False
                elif t.text == ",":
                    expect_name = True
            j += 1
        return out
    return []
