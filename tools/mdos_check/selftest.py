#!/usr/bin/env python3
"""Self-test for the mdos-check suite against the seeded fixtures.

Each checker runs over its bad fixture and must produce EXACTLY the
seeded findings (matched on file, line, check name, and a distinctive
message fragment), and over its clean fixture and must produce none.
This is what makes the checkers trustworthy as build gates: a lexer
regression that silently stops flagging (or starts over-flagging) fails
this test, not a future code review.

Run directly or through ctest (mdos_check_selftest). Exit 0 on success,
1 with a diff of expected vs actual findings otherwise.
"""

from __future__ import annotations

import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, HERE)

import check_blocking
import check_layers
import check_protocol
import check_status
from findings import SourceSet

FIXTURES = os.path.join(HERE, "fixtures")
LAYERS_TOML = os.path.join(HERE, "layers.toml")

failures = []


def _key(source_set, finding):
    return (source_set.relpath(finding.path).replace(os.sep, "/"),
            finding.line, finding.check)


def expect(label, source_set, findings, expected):
    """expected: list of (relpath, line, check, message_fragment)."""
    actual = {}
    for f in findings:
        actual.setdefault(_key(source_set, f), []).append(f.message)

    want_keys = {(rel, line, check) for rel, line, check, _ in expected}
    got_keys = set(actual)

    for rel, line, check, fragment in expected:
        msgs = actual.get((rel, line, check), [])
        if not msgs:
            failures.append(
                f"{label}: MISSING expected finding "
                f"{rel}:{line} [{check}] (~ \"{fragment}\")")
        elif not any(fragment in m for m in msgs):
            failures.append(
                f"{label}: finding at {rel}:{line} [{check}] lacks "
                f"fragment \"{fragment}\"; got: {msgs}")
    for key in sorted(got_keys - want_keys):
        rel, line, check = key
        failures.append(
            f"{label}: UNEXPECTED finding {rel}:{line} [{check}]: "
            f"{actual[key]}")


def main():
    # --- blocking-call ---------------------------------------------------
    src = os.path.join(FIXTURES, "src")
    bad = SourceSet([os.path.join(src, "plasma", "bad_blocking.cc")], src)
    expect("blocking/bad", bad, check_blocking.run(bad), [
        ("plasma/bad_blocking.cc", 43, "blocking-call", "sleep_for"),
        ("plasma/bad_blocking.cc", 49, "blocking-call", "[rpc]"),
        ("plasma/bad_blocking.cc", 50, "blocking-call", "[wait]"),
        ("plasma/bad_blocking.cc", 58, "blocking-call",
         "while MutexLock"),
    ])
    clean = SourceSet(
        [os.path.join(src, "plasma", "clean_blocking.cc")], src)
    expect("blocking/clean", clean, check_blocking.run(clean), [])

    # --- status-discipline ----------------------------------------------
    bad = SourceSet([os.path.join(src, "plasma", "bad_status.cc")], src)
    expect("status/bad", bad, check_status.run(bad), [
        ("plasma/bad_status.cc", 21, "status-discipline", "(void)-cast"),
        ("plasma/bad_status.cc", 27, "status-discipline",
         "swallowed instead of propagated"),
    ])
    clean = SourceSet([os.path.join(src, "plasma", "clean_status.cc")], src)
    expect("status/clean", clean, check_status.run(clean), [])

    # --- layering --------------------------------------------------------
    bad = SourceSet.from_tree(os.path.join(FIXTURES, "layers_bad", "src"))
    expect("layers/bad", bad, check_layers.run(bad, LAYERS_TOML), [
        ("wire/writer.h", 6, "layering", "upward include"),
        ("plasma/store.h", 6, "layering", "subsystem include cycle"),
    ])
    clean = SourceSet.from_tree(
        os.path.join(FIXTURES, "layers_clean", "src"))
    expect("layers/clean", clean, check_layers.run(clean, LAYERS_TOML), [])

    # --- protocol-exhaustiveness ----------------------------------------
    bad = SourceSet.from_tree(
        os.path.join(FIXTURES, "protocol_bad", "src"))
    bad_tests = [os.path.join(FIXTURES, "protocol_bad", "tests")]
    expect("protocol/bad", bad,
           check_protocol.run(bad, test_roots=bad_tests), [
               ("plasma/protocol.h", 15, "protocol-exhaustiveness",
                "lacks DecodeFrom"),
               ("plasma/protocol.h", 15, "protocol-exhaustiveness",
                "no dispatch arm"),
               ("plasma/protocol.h", 16, "protocol-exhaustiveness",
                "no test coverage"),
           ])
    clean = SourceSet.from_tree(
        os.path.join(FIXTURES, "protocol_clean", "src"))
    clean_tests = [os.path.join(FIXTURES, "protocol_clean", "tests")]
    expect("protocol/clean", clean,
           check_protocol.run(clean, test_roots=clean_tests), [])

    if failures:
        print("mdos_check selftest FAILED:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("mdos_check selftest: all fixture assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
