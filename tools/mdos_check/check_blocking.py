"""Blocking-call reachability checker.

Shard event-loop threads serve every client homed on them: one blocking
call stalls all of those clients at once, and under load that reads as
a gray failure nothing else can explain. The compiler cannot see this
contract, so this checker does:

  1. Functions annotated `MDOS_EVENT_LOOP_CONTEXT` (declared in
     common/thread_annotations.h; applied to shard event-loop entry
     points, Poller read/write callbacks, and TxQueue flush paths) are
     reachability ROOTS.
  2. A call graph is built over src/ by name resolution (a lexer-grade
     over-approximation — see mdos_cxx.py) and walked from the roots.
  3. Any reachable function that calls a DENYLISTED primitive — sleeps,
     poll/select with a wait outside the Poller itself, blocking
     connect, RpcChannel::Call*, CondVar::Wait, the blocking stream-I/O
     helpers — is a finding, reported with the call chain from the root.
  4. Independently, a denylisted call made while a `MutexLock` is
     lexically alive is a finding in ANY function (a shard mutex held
     across a blocking call serializes every client of that shard, even
     off the event loop), except for rules marked `lock_ok` (CondVar
     waits take the lock by contract and release it while waiting).

Suppressions: `// mdos-check: allow-blocking(<reason>)` on (or directly
above) the call line both silences the finding and CUTS the call edge —
the documented blocking seams (the DistHooks peer-RPC boundary, the
connect handshake's ordered blocking flush) stay visible in the code as
reviewable suppressions instead of silently passing.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import os

from findings import Finding

CHECK = "blocking-call"


@dataclasses.dataclass
class DenyRule:
    names: tuple          # callee last-segment names this rule matches
    category: str
    why: str
    # Receivers for which the call is NOT denied (e.g. Poller::Wait is
    # the event loop). When the receiver matches, call-graph resolution
    # is also narrowed to `allow_class` so the benign overload does not
    # drag in the blocking one.
    allow_receivers: tuple = ()
    allow_class: str = ""
    # Files whose *call sites* this rule never fires in (the primitive's
    # own implementation layer).
    exempt_files: tuple = ()
    # Holding a MutexLock across this call is acceptable (CondVar::Wait
    # releases the mutex while blocked).
    lock_ok: bool = False


DENY_RULES = (
    DenyRule(
        names=("sleep", "usleep", "nanosleep", "sleep_for", "sleep_until"),
        category="sleep",
        why="sleeping on an event-loop thread stalls every client homed "
            "on it"),
    DenyRule(
        names=("poll", "ppoll", "select", "epoll_wait", "epoll_pwait"),
        category="poll",
        why="raw readiness waits belong inside net::Poller, the one "
            "place allowed to block the loop",
        exempt_files=("net/poller.cc",)),
    DenyRule(
        names=("connect", "Connect", "ConnectUnix"),
        category="connect",
        why="blocking connect (dial + handshake) can take seconds; "
            "event-loop code must go through an established channel"),
    DenyRule(
        names=("Call", "CallTyped", "CallWithDeadline",
               "CallTypedDeadline"),
        category="rpc",
        why="RpcChannel calls are synchronous round trips (with redial "
            "backoff); never issue them from an event loop or under a "
            "shard mutex"),
    DenyRule(
        names=("Wait", "WaitFor", "WaitUntil", "WaitAll", "WaitAny",
               "Take"),
        category="wait",
        why="condition/future waits park the thread until another "
            "thread acts — on an event loop that is a deadlock seed",
        allow_receivers=("poller", "poller_", "accept_poller_"),
        allow_class="Poller",
        lock_ok=True),
    DenyRule(
        names=("WriteAll", "ReadAll", "WritevAll", "SendFrame",
               "RecvFrame", "RecvExpect", "SendFdOver", "RecvFdOver"),
        category="blocking-io",
        why="the *All/Frame helpers loop until completion; event-loop "
            "egress goes through the non-blocking TxQueue instead"),
)

# Files whose function bodies are never scanned or traversed: the
# primitives' own implementation (net/poller.cc is the sanctioned
# blocking point) and client-side code that shares method names with
# the store surface (Get/Connect/Wait) but can never run on a store
# event-loop thread.
TRAVERSE_EXCLUDE = (
    "net/poller.cc",
    "plasma/client.cc",
    "plasma/client.h",
    "plasma/async_client.cc",
    "plasma/async_client.h",
    "common/future.h",
    "cluster/*",
)


def _excluded(rel):
    return any(fnmatch.fnmatch(rel, pat) for pat in TRAVERSE_EXCLUDE)


def _rule_for(call):
    for rule in DENY_RULES:
        if call.name in rule.names:
            return rule
    return None


def run(source_set) -> list[Finding]:
    findings = []

    defs_by_name = {}
    for fn in source_set.all_functions():
        if not fn.is_definition:
            continue
        if _excluded(source_set.relpath(fn.path)):
            continue
        defs_by_name.setdefault(fn.name, []).append(fn)

    annotated = {
        fn.qualname
        for fn in source_set.all_functions()
        if "MDOS_EVENT_LOOP_CONTEXT" in fn.annotations
    }
    roots = []
    for fns in defs_by_name.values():
        for fn in fns:
            if "MDOS_EVENT_LOOP_CONTEXT" in fn.annotations:
                roots.append(fn)
            elif any(q.endswith("::" + fn.name) and
                     _tail_matches(q, fn.qualname) for q in annotated):
                roots.append(fn)
    if not roots:
        findings.append(Finding(
            source_set.src_root, 1, CHECK,
            "no MDOS_EVENT_LOOP_CONTEXT annotations found — the "
            "event-loop reachability check has no roots (annotate the "
            "shard loops, Poller callbacks, and TxQueue flush paths)"))

    # BFS from the roots.
    visited = {}
    queue = []
    for fn in roots:
        if id(fn) not in visited:
            visited[id(fn)] = (fn, None)
            queue.append(fn)
    reported = set()
    while queue:
        fn = queue.pop(0)
        for call in fn.calls:
            sf = source_set.sources[fn.path]
            if sf.is_suppressed(call.line, "blocking"):
                continue  # documented seam: edge cut, finding silenced
            rule = _rule_for(call)
            narrowed_class = ""
            if rule is not None:
                if call.receiver in rule.allow_receivers:
                    narrowed_class = rule.allow_class
                elif source_set.relpath(fn.path) in rule.exempt_files:
                    pass
                else:
                    key = (fn.path, call.line, call.name)
                    if key not in reported:
                        reported.add(key)
                        chain = _chain(visited, fn)
                        findings.append(Finding(
                            fn.path, call.line, CHECK,
                            f"event-loop context reaches blocking call "
                            f"`{call.spelled()}` [{rule.category}] via "
                            f"{chain}; {rule.why}"))
                    continue
            for callee in _resolve(defs_by_name, call, narrowed_class):
                if id(callee) not in visited:
                    visited[id(callee)] = (callee, fn)
                    queue.append(callee)

    # Mutex-held-across-blocking-call: every function, lexical MutexLock
    # scopes.
    for fn in source_set.all_functions():
        if not fn.is_definition or \
                _excluded(source_set.relpath(fn.path)):
            continue
        for call in fn.calls:
            if not call.under_locks:
                continue
            rule = _rule_for(call)
            if rule is None or rule.lock_ok:
                continue
            if call.receiver in rule.allow_receivers:
                continue
            if source_set.relpath(fn.path) in rule.exempt_files:
                continue
            sf = source_set.sources[fn.path]
            if sf.is_suppressed(call.line, "blocking"):
                continue
            findings.append(Finding(
                fn.path, call.line, CHECK,
                f"blocking call `{call.spelled()}` [{rule.category}] "
                f"while MutexLock `{', '.join(call.under_locks)}` is "
                f"held in {fn.qualname}; {rule.why}"))

    return findings


def _tail_matches(annotated_qual, def_qual):
    """`Store::ShardLoop` (header decl) matches
    `mdos::plasma::Store::ShardLoop` (out-of-line def) and vice versa."""
    a = annotated_qual.split("::")
    d = def_qual.split("::")
    k = min(len(a), len(d))
    return a[-k:] == d[-k:]


def _resolve(defs_by_name, call, narrowed_class):
    candidates = defs_by_name.get(call.name, ())
    if narrowed_class:
        candidates = [fn for fn in candidates
                      if f"::{narrowed_class}::" in f"::{fn.qualname}"]
    elif call.qualifier:
        qualified = [fn for fn in candidates
                     if fn.qualname.endswith(
                         f"{call.qualifier}::{call.name}")]
        if qualified:
            candidates = qualified
    return candidates


def _chain(visited, fn):
    parts = []
    node = fn
    while node is not None:
        parts.append(node.qualname)
        node = visited[id(node)][1]
    return " <- ".join(parts)
