// Legal counterparts of bad_status.cc: consumed results, a suppressed
// waiver, and an ambiguous name (void overload exists) in statement
// position. The self-test asserts ZERO findings here.
namespace fixture_clean {

class Status {
 public:
  bool ok() const;
};

Status DoFallible();

class Other {
 public:
  void Reset();  // an infallible Reset exists...
};

class Table {
 public:
  Status Reset();  // ...so statement-position Reset() is ambiguous
};

class Teardown {
 public:
  Status Close();
  void Drop();

 private:
  Table table_;
};

void Teardown::Drop() {
  // Consumed: tested, not discarded.
  if (!DoFallible().ok()) return;
  // mdos-check: allow-discard(fixture: documented waiver)
  (void)DoFallible();
  // Ambiguous name in statement position: not flagged (could be the
  // void overload).
  table_.Reset();
}

Status Teardown::Close() { return DoFallible(); }

}  // namespace fixture_clean
