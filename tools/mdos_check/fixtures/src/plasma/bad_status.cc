// Seeded violations for the status-discipline checker. Line numbers are
// asserted by selftest.py — append only.
namespace fixture {

class Status {
 public:
  bool ok() const;
};

Status DoFallible();
Status AlsoFallible();

class Teardown {
 public:
  Status Close();
  void Drop();
};

// (void)-cast of a fallible call in an infallible function.
void Teardown::Drop() {
  (void)DoFallible();  // line 21
}

// Discard in statement position inside a FALLIBLE function: the
// "swallowed instead of propagated" variant.
Status Teardown::Close() {
  AlsoFallible();  // line 27
  return DoFallible();
}

}  // namespace fixture
