// Legal counterparts of bad_blocking.cc: the same call shapes made
// acceptable — Poller receivers, a documented suppression, a lock that
// is released before the blocking call. The self-test asserts ZERO
// findings here.
#include <thread>

#include "common/thread_annotations.h"

namespace fixture_clean {

struct Reply {
  bool ok;
};

class Channel {
 public:
  Reply Call(int method);
};

class Poller {
 public:
  int Wait(int timeout_ms);  // the sanctioned blocking point
};

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class EventLoop {
 public:
  MDOS_EVENT_LOOP_CONTEXT void Tick();
  void OffLoop();

 private:
  Channel channel_;
  Poller poller_;
  Mutex mutex_;
};

void EventLoop::Tick() {
  // Poller::Wait IS the event loop: exempt by receiver.
  poller_.Wait(10);
  // mdos-check: allow-blocking(fixture: documented deadline-bounded seam)
  channel_.Call(7);
}

void EventLoop::OffLoop() {
  {
    MutexLock lock(mutex_);
  }  // lock scope closed: the call below is NOT under it
  channel_.Call(9);
}

}  // namespace fixture_clean
