// Seeded violations for the blocking-call checker. Line numbers are
// asserted by selftest.py — append only.
#include <thread>

#include "common/thread_annotations.h"

namespace fixture {

struct Reply {
  bool ok;
};

class Channel {
 public:
  Reply Call(int method);  // denylisted name (rpc family)
};

class CondVar {
 public:
  void Wait();  // denylisted name (wait family)
};

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class EventLoop {
 public:
  MDOS_EVENT_LOOP_CONTEXT void Tick();
  void Helper();
  void OffLoop();

 private:
  Channel channel_;
  CondVar cv_;
  Mutex mutex_;
};

// Root: direct denylisted call (sleep family).
void EventLoop::Tick() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // line 43
  Helper();
}

// Reached FROM the root through one hop: rpc + wait violations.
void EventLoop::Helper() {
  channel_.Call(7);  // line 49
  cv_.Wait();        // line 50
}

// NOT annotated and NOT reachable from a root, but holds a lexical
// MutexLock across a denylisted RPC call: the lock-held sub-check fires
// in any function.
void EventLoop::OffLoop() {
  MutexLock lock(mutex_);
  channel_.Call(9);  // line 58
}

}  // namespace fixture
