// Test corpus for the clean protocol fixture: both structs exercised.
#include "plasma/protocol.h"

namespace fixture_clean {

bool RoundTripEcho() {
  EchoRequest req{7};
  char buf[8];
  req.EncodeTo(buf);
  EchoRequest back{};
  if (!EchoRequest::DecodeFrom(buf, &back)) return false;
  EchoReply reply{back.nonce};
  char buf2[8];
  reply.EncodeTo(buf2);
  EchoReply rback{};
  return EchoReply::DecodeFrom(buf2, &rback);
}

}  // namespace fixture_clean
