// Client-side dispatch TU for the clean protocol fixture: both
// enumerators named.
#include "plasma/protocol.h"

namespace fixture_clean {

int ClientDispatch(MessageType type) {
  switch (type) {
    case MessageType::kEchoRequest:
      return 1;
    case MessageType::kEchoReply:
      return 2;
  }
  return -1;
}

}  // namespace fixture_clean
