// Dispatch TU for the clean protocol fixture: every enumerator named.
#include "plasma/protocol.h"

namespace fixture_clean {

int Dispatch(MessageType type) {
  switch (type) {
    case MessageType::kEchoRequest:
      return 1;
    case MessageType::kEchoReply:
      return 2;
    default:
      return -1;
  }
}

}  // namespace fixture_clean
