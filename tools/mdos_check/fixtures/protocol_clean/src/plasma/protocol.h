// Protocol fixture (clean): two-message protocol where every
// enumerator has a codec arm, a dispatch arm, and test coverage.
// The checker must produce zero findings over this tree.
#pragma once

#include <cstdint>

namespace fixture_clean {

enum class MessageType : uint32_t {
  kEchoRequest = 1,
  kEchoReply = 2,
};

struct EchoRequest {
  uint64_t nonce;
  void EncodeTo(char* out) const;
  static bool DecodeFrom(const char* in, EchoRequest* out);
};

struct EchoReply {
  uint64_t nonce;
  void EncodeTo(char* out) const;
  static bool DecodeFrom(const char* in, EchoReply* out);
};

}  // namespace fixture_clean
