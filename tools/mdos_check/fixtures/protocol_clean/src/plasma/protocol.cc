// Codec TU for the clean protocol fixture: both structs define both
// codec arms.
#include "plasma/protocol.h"

#include <cstring>

namespace fixture_clean {

void EchoRequest::EncodeTo(char* out) const {
  std::memcpy(out, &nonce, sizeof(nonce));
}

bool EchoRequest::DecodeFrom(const char* in, EchoRequest* out) {
  std::memcpy(&out->nonce, in, sizeof(out->nonce));
  return true;
}

void EchoReply::EncodeTo(char* out) const {
  std::memcpy(out, &nonce, sizeof(nonce));
}

bool EchoReply::DecodeFrom(const char* in, EchoReply* out) {
  std::memcpy(&out->nonce, in, sizeof(out->nonce));
  return true;
}

}  // namespace fixture_clean
