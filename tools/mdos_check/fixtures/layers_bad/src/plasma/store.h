// Target of the seeded upward include; itself legal (plasma -> wire is
// downward). Completes the wire <-> plasma cycle so the cycle detector
// has something to report alongside the upward-edge finding.
#pragma once

#include "wire/writer.h"

namespace fixture {
struct Store {};
}  // namespace fixture
