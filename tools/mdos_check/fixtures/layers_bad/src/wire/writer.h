// Seeded layering violation: wire (level 1) reaching UP into plasma
// (level 5). The include below is the finding; selftest.py asserts its
// exact line.
#pragma once

#include "plasma/store.h"  // line 6: upward include

namespace fixture {
struct Writer {};
}  // namespace fixture
