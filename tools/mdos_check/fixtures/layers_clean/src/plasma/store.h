// Clean layering fixture: plasma -> wire is a legal downward edge, and
// a commented-out upward include must NOT count.
#pragma once

#include "wire/writer.h"
// #include "dist/remote_registry.h"  (dead include: must not be flagged)

namespace fixture_clean {
struct Store {};
}  // namespace fixture_clean
