// Clean layering fixture: wire depends only on common (downward).
#pragma once

#include "common/status.h"

namespace fixture_clean {
struct Writer {};
}  // namespace fixture_clean
