// Clean layering fixture: common is the bottom layer and includes
// nothing project-local.
#pragma once

namespace fixture_clean {
struct Status {};
}  // namespace fixture_clean
