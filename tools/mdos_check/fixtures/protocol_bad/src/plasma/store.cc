// Dispatch TU for the bad protocol fixture. kPingReply is deliberately
// never named here (seeded finding: no dispatch arm).
#include "plasma/protocol.h"

namespace fixture {

int Dispatch(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest:
      return 1;
    case MessageType::kDropRequest:
      return 2;
    default:
      return -1;
  }
}

}  // namespace fixture
