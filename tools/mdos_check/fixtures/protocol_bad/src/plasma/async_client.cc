// Client-side dispatch TU for the bad protocol fixture: every
// enumerator IS named here, so the seeded dispatch finding for the
// reply message comes from the server side alone (exactly one finding).
#include "plasma/protocol.h"

namespace fixture {

int ClientDispatch(MessageType type) {
  switch (type) {
    case MessageType::kPingRequest:
      return 1;
    case MessageType::kPingReply:
      return 2;
    case MessageType::kDropRequest:
      return 3;
  }
  return -1;
}

}  // namespace fixture
