// Protocol fixture (bad): three-message mini protocol with seeded gaps.
//   kPingRequest -- fully covered (codec + dispatch + test): no finding.
//   kPingReply   -- PingReply struct has no DecodeFrom, and no dispatch
//                   arm mentions MessageType::kPingReply: two findings.
//   kDropRequest -- codec and dispatch exist but nothing under the test
//                   roots mentions it: one coverage finding.
#pragma once

#include <cstdint>

namespace fixture {

enum class MessageType : uint32_t {
  kPingRequest = 1,
  kPingReply = 2,
  kDropRequest = 3,
};

struct PingRequest {
  uint64_t nonce;
  void EncodeTo(char* out) const;
  static bool DecodeFrom(const char* in, PingRequest* out);
};

struct PingReply {
  uint64_t nonce;
  void EncodeTo(char* out) const;
  // DecodeFrom deliberately missing: seeded codec finding.
};

struct DropRequest {
  uint64_t object_id;
  void EncodeTo(char* out) const;
  static bool DecodeFrom(const char* in, DropRequest* out);
};

}  // namespace fixture
