// Codec TU for the bad protocol fixture. PingReply::DecodeFrom is
// deliberately absent (seeded finding); everything else is defined.
#include "plasma/protocol.h"

#include <cstring>

namespace fixture {

void PingRequest::EncodeTo(char* out) const {
  std::memcpy(out, &nonce, sizeof(nonce));
}

bool PingRequest::DecodeFrom(const char* in, PingRequest* out) {
  std::memcpy(&out->nonce, in, sizeof(out->nonce));
  return true;
}

void PingReply::EncodeTo(char* out) const {
  std::memcpy(out, &nonce, sizeof(nonce));
}

void DropRequest::EncodeTo(char* out) const {
  std::memcpy(out, &object_id, sizeof(object_id));
}

bool DropRequest::DecodeFrom(const char* in, DropRequest* out) {
  std::memcpy(&out->object_id, in, sizeof(out->object_id));
  return true;
}

}  // namespace fixture
