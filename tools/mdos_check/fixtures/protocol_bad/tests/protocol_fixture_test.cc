// Test corpus for the bad protocol fixture. Covers PingRequest and
// PingReply; the drop message is deliberately untested (seeded
// coverage finding). Nothing here may name that struct, even in a
// comment, because test coverage is a raw substring probe.
#include "plasma/protocol.h"

namespace fixture {

bool RoundTripPing() {
  PingRequest req{42};
  char buf[8];
  req.EncodeTo(buf);
  PingRequest back{};
  if (!PingRequest::DecodeFrom(buf, &back)) return false;
  PingReply reply{back.nonce};
  char buf2[8];
  reply.EncodeTo(buf2);
  return true;
}

}  // namespace fixture
