"""Status discipline checker.

`Status` and `Result<T>` are both class-level [[nodiscard]], so the
compiler already rejects a silently ignored return. What it cannot see
is the two idioms that defeat the attribute:

  1. `(void)DoFallibleThing();` — the cast is an explicit waiver, but it
     carries no reason and no log. Teardown paths accumulated dozens of
     these; when one started hiding a real unmap failure there was
     nothing to grep for.
  2. A fallible call in statement position whose result is consumed by
     nothing (possible through templates, macros, or C-linkage shims
     that launder the attribute away).

This checker flags both. Inside a function that itself returns
Status/Result the message further says "swallowed instead of
propagated" — in fallible code the right form is almost always
MDOS_RETURN_IF_ERROR / MDOS_ASSIGN_OR_RETURN.

Escapes, in order of preference:
  - `MDOS_WARN_IF_ERROR(expr, "context")` (common/status.h) — logs on
    failure; the checker treats it as consumption.
  - `// mdos-check: allow-discard(<reason>)` on (or directly above) the
    line, for calls where even logging is wrong (e.g. double-close on a
    teardown path that already reported).
  - ALLOWLIST below for whole-file/function patterns (generated or
    intentionally fire-and-forget code), each entry with a reason.
"""

from __future__ import annotations

import fnmatch

from findings import Finding

CHECK = "status-discipline"

# (file-glob relative to src root, callee name or "*") -> reason.
ALLOWLIST = (
    # SetNoDelay is advisory: a failed TCP_NODELAY changes latency, not
    # correctness, and both client and store log the connect path
    # elsewhere.
    ("*", "SetNoDelay", "advisory socket tuning; failure is harmless"),
)

# Call names that look fallible by declaration matching but whose
# common overloads/receivers are infallible containers (std::map::erase
# etc. share names with fallible mdos APIs). A call is only flagged if
# its *qualifier or receiver* matches nothing in this set and the name
# resolves to a fallible declaration.
STD_CONTAINER_RECEIVER_HINTS = (
    "objects", "entries", "pending", "conns", "clients", "subs",
    "map", "set", "vec", "queue", "cache",
)


def _allowlisted(rel, call_name):
    for file_glob, callee, _reason in ALLOWLIST:
        if callee in ("*", call_name) and fnmatch.fnmatch(rel, file_glob):
            return True
    return False


def run(source_set) -> list[Finding]:
    findings = []

    # Pass 1: every function name with at least one fallible declaration
    # or definition anywhere in the set. Name-level resolution
    # over-approximates; the hints below and suppressions handle the
    # residue.
    fallible = {}
    # Names that also have a NON-fallible declaration somewhere: a bare
    # statement-position call to such a name may be a void overload
    # (EvictionPolicy::Remove vs ObjectTable::Remove), so only
    # unambiguous names are flagged in statement position. A (void)-cast
    # is different: nobody casts a void call to void, so any fallible
    # match suffices there.
    ambiguous = set()
    # (enclosing class qualname, member name) -> any declaration fallible.
    # Lets an unqualified self-call resolve to the member of the SAME
    # class first (Future::Take calling its own infallible Wait() must
    # not inherit Poller::Wait's fallibility).
    members = {}
    for fn in source_set.all_functions():
        if fn.returns_fallible:
            fallible.setdefault(fn.name, set()).add(fn.qualname)
        else:
            ambiguous.add(fn.name)
        if "::" in fn.qualname:
            key = (fn.qualname.rsplit("::", 1)[0], fn.name)
            members[key] = members.get(key, False) or fn.returns_fallible

    for fn in source_set.all_functions():
        if not fn.is_definition:
            continue
        rel = source_set.relpath(fn.path)
        sf = source_set.sources[fn.path]
        for call in fn.calls:
            if call.name not in fallible:
                continue
            discarded = call.void_cast or (
                call.stmt_position and call.name not in ambiguous)
            if not discarded:
                continue
            # Unqualified self-call: the member of the enclosing class
            # wins name resolution; skip when that member is infallible.
            if not call.receiver and not call.qualifier and \
                    "::" in fn.qualname:
                cls = fn.qualname.rsplit("::", 1)[0]
                if (cls, call.name) in members and \
                        not members[(cls, call.name)]:
                    continue
            # Method calls on obvious container members are std::
            # erase/insert/count lookalikes, not mdos fallible APIs.
            if call.receiver and call.receiver.rstrip("_") in \
                    STD_CONTAINER_RECEIVER_HINTS:
                continue
            if _allowlisted(rel, call.name):
                continue
            if sf.is_suppressed(call.line, "discard"):
                continue
            how = "(void)-cast" if call.void_cast else \
                "discarded in statement position"
            if fn.returns_fallible:
                msg = (f"Status from `{call.spelled()}` {how} inside "
                       f"fallible {fn.qualname} — error swallowed "
                       f"instead of propagated (use "
                       f"MDOS_RETURN_IF_ERROR, or MDOS_WARN_IF_ERROR "
                       f"for best-effort cleanup)")
            else:
                msg = (f"Status from `{call.spelled()}` {how} in "
                       f"{fn.qualname} — log it via MDOS_WARN_IF_ERROR "
                       f"or document the waiver with "
                       f"`// mdos-check: allow-discard(reason)`")
            findings.append(Finding(fn.path, call.line, CHECK, msg))

    return findings
