"""Protocol exhaustiveness checker.

Every enumerator of `plasma::MessageType` is a wire message the rest of
the system must know how to handle. Reviewer memory used to enforce
that; this checker makes it a build gate. For each enumerator it
requires:

  (a) an encode arm and a decode arm: the message struct derived from
      the enumerator name (kGetRequest -> GetRequest) defines both
      `EncodeTo` and `DecodeFrom` in the protocol TU;
  (b) dispatch arms on BOTH sides of the wire: the enumerator is named
      (as `MessageType::kX`) in the server frame handler (the store
      dispatches requests and emits replies/pushes) AND in at least one
      client reader path (which sends requests and decodes replies).
      The sides are checked separately on purpose: every message is
      named on both, so a single shared corpus would let a deleted
      store dispatch arm hide behind the client's send site;
  (c) test coverage: the enumerator or its struct appears in at least
      one test or fuzz TU (the fuzz corpus replays through ctest, so a
      TryDecode<Struct> arm in fuzz_protocol.cc counts).

A new MessageType lands green only when all three exist. Config below
names the files; enumerators without a payload struct (pure signals
like kDisconnectRequest) are listed explicitly with the reason.
"""

from __future__ import annotations

import os

import mdos_cxx
from findings import Finding

CHECK = "protocol-exhaustiveness"

CONFIG = {
    # File holding the enum (relative to the source root).
    "enum_file": "plasma/protocol.h",
    "enum_name": "MessageType",
    # TU that must define EncodeTo/DecodeFrom for every message struct.
    "codec_file": "plasma/protocol.cc",
    # Where a `MessageType::kX` mention counts as a dispatch arm, per
    # side. Every enumerator must appear in BOTH groups (a group whose
    # files are all absent — fixture trees — is skipped).
    "server_dispatch_files": [
        "plasma/store.cc",        # request dispatch + reply/push emission
    ],
    "client_dispatch_files": [
        "plasma/async_client.cc",  # reply dispatch (pipelined reader)
        "plasma/client.cc",        # blocking shim + notification listener
    ],
    # Enumerators with no payload struct: name -> reason. Exempt from
    # (a) and (c)'s struct-name clause but still need a dispatch arm.
    "no_payload": {
        "kDisconnectRequest":
            "pure signal; the store drops the client without decoding",
    },
    # Enumerator -> struct name when the k-prefix-strip convention does
    # not apply.
    "struct_overrides": {
        "kNotification": "Notification",
    },
}


def struct_name_for(enumerator: str) -> str:
    if enumerator in CONFIG["struct_overrides"]:
        return CONFIG["struct_overrides"][enumerator]
    return enumerator[1:] if enumerator.startswith("k") else enumerator


def run(source_set, test_roots=None) -> list[Finding]:
    src = source_set.src_root
    findings = []

    enum_path = os.path.join(src, CONFIG["enum_file"])
    enum_sf = source_set.sources.get(os.path.abspath(enum_path))
    if enum_sf is None:
        enum_sf = mdos_cxx.load(enum_path)
    enumerators = mdos_cxx.parse_enum(enum_sf, CONFIG["enum_name"])
    if not enumerators:
        findings.append(Finding(
            enum_path, 1, CHECK,
            f"enum {CONFIG['enum_name']} not found in "
            f"{CONFIG['enum_file']}"))
        return findings

    codec_path = os.path.abspath(os.path.join(src, CONFIG["codec_file"]))
    codec_sf = source_set.sources.get(codec_path)
    if codec_sf is None and os.path.exists(codec_path):
        codec_sf = mdos_cxx.load(codec_path)
    codec_defs = {}
    if codec_sf is not None:
        for fn in codec_sf.functions:
            if fn.is_definition and fn.name in ("EncodeTo", "DecodeFrom"):
                cls = fn.qualname.split("::")[-2] if \
                    "::" in fn.qualname else ""
                codec_defs.setdefault(cls, set()).add(fn.name)

    def dispatch_corpus(key):
        corpus = ""
        for rel in CONFIG[key]:
            path = os.path.abspath(os.path.join(src, rel))
            sf = source_set.sources.get(path)
            if sf is None and os.path.exists(path):
                sf = mdos_cxx.load(path)
            if sf is not None:
                corpus += sf.code
        return corpus

    # side label -> (corpus, file list); empty corpus groups (fixture
    # trees without that side) impose no requirement.
    dispatch_sides = {}
    for label, key, where in (
            ("server", "server_dispatch_files",
             "the server frame handlers"),
            ("client", "client_dispatch_files",
             "the client reader paths")):
        corpus = dispatch_corpus(key)
        if corpus:
            dispatch_sides[label] = (corpus, where, CONFIG[key])

    test_corpus = ""
    for root in test_roots or ():
        if not os.path.isdir(root):
            continue
        for dirpath, _, names in os.walk(root):
            for name in names:
                if name.endswith((".cc", ".cpp", ".h")):
                    with open(os.path.join(dirpath, name),
                              encoding="utf-8", errors="replace") as f:
                        test_corpus += f.read()

    for enumerator, line in enumerators:
        qualified = f"MessageType::{enumerator}"
        no_payload = enumerator in CONFIG["no_payload"]
        struct = struct_name_for(enumerator)

        if not no_payload:
            have = codec_defs.get(struct, set())
            missing = {"EncodeTo", "DecodeFrom"} - have
            if missing:
                findings.append(Finding(
                    enum_sf.path, line, CHECK,
                    f"{enumerator}: struct {struct} lacks "
                    f"{'/'.join(sorted(missing))} in "
                    f"{CONFIG['codec_file']} (every MessageType needs a "
                    f"codec arm)"))

        for corpus, where, files in dispatch_sides.values():
            if qualified not in corpus:
                findings.append(Finding(
                    enum_sf.path, line, CHECK,
                    f"{enumerator}: no dispatch arm — {qualified} is "
                    f"never named in {where} ({', '.join(files)})"))

        if test_roots is not None:
            probe = enumerator if no_payload else struct
            if probe not in test_corpus and qualified not in test_corpus:
                findings.append(Finding(
                    enum_sf.path, line, CHECK,
                    f"{enumerator}: no test coverage — neither "
                    f"{probe} nor {qualified} appears in any test or "
                    f"fuzz TU"))

    return findings
