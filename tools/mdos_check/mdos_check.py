#!/usr/bin/env python3
"""mdos-check: build-gating static analysis for the mdos tree.

Four checkers over the C++ sources, driven by the build's
compile_commands.json (falling back to a tree walk when no build dir is
available). Zero dependencies beyond CPython 3.11 — the lexer core in
mdos_cxx.py replaces libclang, which this toolchain does not ship.

  protocol   every MessageType has codec, dispatch, and test coverage
  blocking   MDOS_EVENT_LOOP_CONTEXT roots never reach blocking calls;
             no blocking call under a held MutexLock
  layers     the include graph respects layers.toml (no upward edges,
             no cycles)
  status     no undocumented discarded Status/Result

Usage:
  mdos_check.py --check all --build-dir build
  mdos_check.py --check layers --src-root src
  mdos_check.py --check status --files fixtures/bad_status.cc

Findings print as `path:line: [check-name] message`; exit status 1 when
any finding is produced, 2 on usage/config errors.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_blocking
import check_layers
import check_protocol
import check_status
from findings import SourceSet

CHECKS = ("protocol", "blocking", "layers", "status")


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(here))

    ap = argparse.ArgumentParser(
        prog="mdos_check", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--check", default="all",
                    choices=CHECKS + ("all",),
                    help="which checker to run (default: all)")
    ap.add_argument("--build-dir", default=None,
                    help="build directory holding compile_commands.json")
    ap.add_argument("--compile-commands", default=None,
                    help="explicit path to compile_commands.json")
    ap.add_argument("--src-root", default=os.path.join(repo, "src"),
                    help="source root (default: <repo>/src)")
    ap.add_argument("--files", nargs="*", default=None,
                    help="check exactly these files (fixture/self-test "
                         "mode; disables compile_commands discovery)")
    ap.add_argument("--layers", default=os.path.join(here, "layers.toml"),
                    help="layer declaration file for --check layers")
    ap.add_argument("--test-roots", nargs="*", default=None,
                    help="directories scanned for protocol test "
                         "coverage (default: <repo>/tests <repo>/fuzz; "
                         "pass an empty list to skip clause (c))")
    args = ap.parse_args(argv)

    src_root = os.path.abspath(args.src_root)
    if args.files is not None:
        missing = [f for f in args.files if not os.path.exists(f)]
        if missing:
            print(f"mdos_check: no such file: {', '.join(missing)}",
                  file=sys.stderr)
            return 2
        source_set = SourceSet(args.files, src_root)
    else:
        cc = args.compile_commands
        if cc is None and args.build_dir:
            cc = os.path.join(args.build_dir, "compile_commands.json")
        if cc and os.path.exists(cc):
            source_set = SourceSet.from_compile_commands(cc, src_root)
        else:
            if cc:
                print(f"mdos_check: {cc} not found; falling back to a "
                      f"tree walk of {src_root}", file=sys.stderr)
            source_set = SourceSet.from_tree(src_root)

    if args.test_roots is None:
        test_roots = [os.path.join(repo, "tests"),
                      os.path.join(repo, "fuzz")]
    else:
        test_roots = args.test_roots

    selected = CHECKS if args.check == "all" else (args.check,)
    findings = []
    for name in selected:
        if name == "protocol":
            findings += check_protocol.run(
                source_set, test_roots=test_roots or None)
        elif name == "blocking":
            findings += check_blocking.run(source_set)
        elif name == "layers":
            findings += check_layers.run(source_set, args.layers)
        elif name == "status":
            findings += check_status.run(source_set)

    root = repo if args.files is None else os.getcwd()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.check)):
        print(f.render(root))
    if findings:
        print(f"mdos_check: {len(findings)} finding(s) from "
              f"{'/'.join(selected)} over {len(source_set.files)} files",
              file=sys.stderr)
        return 1
    print(f"mdos_check: {'/'.join(selected)} clean over "
          f"{len(source_set.files)} files", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
