"""Finding type + source-set loading shared by the mdos-check checkers."""

from __future__ import annotations

import dataclasses
import json
import os

import mdos_cxx


@dataclasses.dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.line}: [{self.check}] {self.message}"


class SourceSet:
    """The files a checker run operates on, parsed once and shared.

    Built either from a compile_commands.json (the TU list of the real
    build — what the CI job and the ctest gates use) or from an explicit
    file list (fixture/self-test mode). Headers under the source root
    ride along in both modes: they are not TUs but carry declarations,
    annotations, and the MessageType enum.
    """

    def __init__(self, files, src_root):
        self.src_root = os.path.abspath(src_root)
        self.files = sorted(set(os.path.abspath(f) for f in files))
        self.sources = {}
        for path in self.files:
            self.sources[path] = mdos_cxx.load(path)

    @classmethod
    def from_compile_commands(cls, cc_path, src_root):
        with open(cc_path, encoding="utf-8") as f:
            db = json.load(f)
        files = set()
        src_root = os.path.abspath(src_root)
        for entry in db:
            path = os.path.abspath(
                os.path.join(entry.get("directory", "."), entry["file"]))
            if path.startswith(src_root + os.sep) and os.path.exists(path):
                files.add(path)
        files.update(cls._headers_under(src_root))
        return cls(files, src_root)

    @classmethod
    def from_tree(cls, src_root):
        src_root = os.path.abspath(src_root)
        files = set(cls._headers_under(src_root))
        for root, _, names in os.walk(src_root):
            for name in names:
                if name.endswith((".cc", ".cpp", ".cxx")):
                    files.add(os.path.join(root, name))
        return cls(files, src_root)

    @staticmethod
    def _headers_under(src_root):
        for root, _, names in os.walk(src_root):
            for name in names:
                if name.endswith((".h", ".hpp")):
                    yield os.path.join(root, name)

    def relpath(self, path):
        return os.path.relpath(path, self.src_root)

    def all_functions(self):
        for sf in self.sources.values():
            yield from sf.functions

    def suppressed(self, path, line, check):
        sf = self.sources.get(os.path.abspath(path))
        return sf is not None and sf.is_suppressed(line, check)
