#!/usr/bin/env python3
"""Documentation consistency checker (the CI `docs` job).

Fails (exit 1) when:
  * any intra-repo markdown link in a tracked .md file points at a
    path that does not exist;
  * a benchmark binary (bench/bench_*.cpp, bench_common excluded) is
    never mentioned in docs/;
  * a src/ subsystem directory is never mentioned in docs/.

External links (http/https/mailto) and pure anchors are not checked —
this is a repo-consistency gate, not a link crawler.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# [text](target) — good enough for the hand-written markdown in this
# repo; images and reference-style links are not used.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Generated retrieval artifacts (paper extraction, snippet corpus):
# their image/figure references were never part of this repo.
GENERATED = {"PAPER.md", "PAPERS.md", "SNIPPETS.md"}


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [
            d for d in dirs
            if not d.startswith(".") and not d.startswith("build")
            and d != "related"
        ]
        for name in files:
            if name.endswith(".md") and name not in GENERATED:
                yield os.path.join(root, name)


def check_links():
    errors = []
    for path in markdown_files():
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path),
                             target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                errors.append(
                    f"{os.path.relpath(path, REPO)}: broken link -> "
                    f"{target}")
    return errors


def docs_corpus():
    corpus = ""
    docs_dir = os.path.join(REPO, "docs")
    for name in sorted(os.listdir(docs_dir)):
        if name.endswith(".md"):
            with open(os.path.join(docs_dir, name), encoding="utf-8") as f:
                corpus += f.read()
    return corpus


def check_bench_coverage(corpus):
    errors = []
    bench_dir = os.path.join(REPO, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not (name.startswith("bench_") and name.endswith(".cpp")):
            continue
        binary = name[:-len(".cpp")]
        if binary == "bench_common":
            continue  # shared harness, not a binary
        if binary not in corpus:
            errors.append(f"docs/: benchmark `{binary}` is undocumented "
                          f"(bench/{name})")
    return errors


def check_fuzz_coverage(corpus):
    errors = []
    fuzz_dir = os.path.join(REPO, "fuzz")
    if not os.path.isdir(fuzz_dir):
        return errors
    for name in sorted(os.listdir(fuzz_dir)):
        if not (name.startswith("fuzz_") and name.endswith(".cc")):
            continue
        harness = name[:-len(".cc")]
        if harness not in corpus:
            errors.append(f"docs/: fuzz harness `{harness}` is "
                          f"undocumented (fuzz/{name})")
    return errors


def check_mdos_check_coverage(corpus):
    """Every mdos-check checker module must be documented in docs/.

    The checkers gate every PR; an undocumented checker is one nobody
    knows how to satisfy or extend.
    """
    errors = []
    check_dir = os.path.join(REPO, "tools", "mdos_check")
    if not os.path.isdir(check_dir):
        return errors
    for name in sorted(os.listdir(check_dir)):
        if not (name.startswith("check_") and name.endswith(".py")):
            continue
        if name not in corpus:
            errors.append(f"docs/: mdos-check checker `{name}` is "
                          f"undocumented (tools/mdos_check/{name})")
    if "mdos-check" not in corpus:
        errors.append("docs/: the mdos-check suite has no docs section")
    return errors


def check_subsystem_coverage(corpus):
    errors = []
    src_dir = os.path.join(REPO, "src")
    for name in sorted(os.listdir(src_dir)):
        if not os.path.isdir(os.path.join(src_dir, name)):
            continue
        if f"src/{name}" not in corpus:
            errors.append(f"docs/: subsystem `src/{name}` is never "
                          f"mentioned")
    return errors


def main():
    corpus = docs_corpus()
    errors = (check_links() + check_bench_coverage(corpus) +
              check_subsystem_coverage(corpus) + check_fuzz_coverage(corpus) +
              check_mdos_check_coverage(corpus))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs OK: links resolve; benches, subsystems, fuzz harnesses, "
          "and mdos-check checkers covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
