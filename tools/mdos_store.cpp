// mdos_store — standalone Plasma store daemon.
//
// Runs one store process serving clients on a Unix socket, like the
// upstream `plasma-store-server` binary. Useful for trying the client
// API from separate processes (the in-process cluster simulator is only
// needed for the disaggregated-fabric experiments).
//
//   mdos_store -s /tmp/mdos.sock -m 268435456 [-a firstfit|segfit] [-j 4]
//              [--spill-dir /var/tmp/mdos-spill] [--egress-cap bytes]
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "plasma/store.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [-s socket_path] [-m capacity_bytes] [-a firstfit|segfit]"
      " [-j shards] [--spill-dir dir] [--egress-cap bytes] [-v]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  mdos::plasma::StoreOptions options;
  options.name = "mdos-store";
  options.capacity = 256ull << 20;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-s") == 0 && i + 1 < argc) {
      options.socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "-m") == 0 && i + 1 < argc) {
      options.capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "-a") == 0 && i + 1 < argc) {
      const char* kind = argv[++i];
      if (std::strcmp(kind, "segfit") == 0) {
        options.allocator = mdos::plasma::AllocatorKind::kSegregatedFit;
      } else if (std::strcmp(kind, "firstfit") == 0) {
        options.allocator = mdos::plasma::AllocatorKind::kFirstFit;
      } else {
        Usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc) {
      options.shards =
          static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (options.shards == 0) {
        Usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--spill-dir") == 0 && i + 1 < argc) {
      options.spill_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--egress-cap") == 0 && i + 1 < argc) {
      // Per-connection reply-queue bound for clients that stop reading
      // (see StoreOptions::max_egress_queue_bytes).
      options.max_egress_queue_bytes =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "-v") == 0) {
      mdos::SetLogLevel(mdos::LogLevel::kInfo);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }

  auto store = mdos::plasma::Store::Create(options);
  if (!store.ok()) {
    std::fprintf(stderr, "store creation failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  if (mdos::Status started = (*store)->Start(); !started.ok()) {
    std::fprintf(stderr, "store start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf(
      "mdos_store serving on %s (capacity %llu bytes, %u shards%s%s)\n",
      (*store)->socket_path().c_str(),
      static_cast<unsigned long long>((*store)->capacity()),
      (*store)->shard_count(),
      options.spill_dir.empty() ? "" : ", spill dir ",
      options.spill_dir.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts{0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  std::printf("shutting down\n");
  (*store)->Stop();
  return 0;
}
