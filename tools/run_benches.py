#!/usr/bin/env python3
"""Runs the benchmark suite and emits a machine-readable JSON record.

Benches print measurements as "RESULT key=value key=value ..." lines;
this script collects them (plus the raw stdout for human reading) into
one JSON file per run — the bench trajectory the repo tracks across PRs
(BENCH_pr4.json and onward; see docs/benchmarks.md).

Usage:
  tools/run_benches.py [--out BENCH_pr4.json]
                       [--build-dir build-rel]
                       [--benches bench_egress,bench_crc32]
                       [--skip-build]

The script configures/builds its own RelWithDebInfo tree by default:
benchmark numbers from a Debug build are meaningless, and the default
test build is whatever the developer last configured.
"""

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

DEFAULT_BENCHES = [
    "bench_egress",
    "bench_crc32",
    "bench_fig6_retrieval_latency",
    "bench_scaleout_vs_disagg",
    "bench_replication",
    "bench_hedged_read",
]
# Quick-mode knobs: enough work for stable numbers, short enough for CI.
BENCH_ENV = {
    "bench_egress": {"MDOS_EGRESS_MB": "128"},
    "bench_crc32": {"MDOS_CRC_MB": "256"},
    # The cluster benches pay a simulated 2 ms LAN RTT per RPC (the
    # pinned baseline pays it per object), so trim repetitions.
    "bench_fig6_retrieval_latency": {"MDOS_REPS": "6"},
    "bench_scaleout_vs_disagg": {"MDOS_REPS": "6"},
    "bench_replication": {"MDOS_REPS": "6"},
    # Each episode boots a fresh 3-node cluster (cold health ranking);
    # 2*reps episodes per phase keeps the p99 meaningful but quick.
    "bench_hedged_read": {"MDOS_REPS": "8"},
}


def reject_instrumented_build(build_dir: Path):
    """Refuses to record benchmarks from a sanitizer/fuzzer build.

    Sanitizer instrumentation slows everything 2-20x; numbers from such
    a tree would poison the BENCH_*.json trajectory the repo tracks
    across PRs. The CI sanitizer and fuzz jobs use dedicated build dirs
    (build-asan, build-tsan, build-fuzz) and never invoke this script,
    and this check keeps an accidental local `--build-dir build-asan`
    from slipping through either.
    """
    cache = build_dir / "CMakeCache.txt"
    if not cache.exists():
        return
    for line in cache.read_text().splitlines():
        if line.startswith("SANITIZE:") and line.split("=", 1)[1].strip():
            sys.exit(f"refusing to benchmark {build_dir}: configured with "
                     f"{line.strip()} (sanitized numbers would pollute the "
                     f"bench record; use a clean build dir)")
        if line.startswith("MDOS_FUZZ:") and \
                line.split("=", 1)[1].strip().upper() in ("ON", "TRUE", "1"):
            sys.exit(f"refusing to benchmark {build_dir}: configured with "
                     f"{line.strip()} (fuzzer instrumentation skews timings; "
                     f"use a clean build dir)")
        # Build type matters as much as instrumentation: a Debug (or
        # unset-type) tree runs the allocator and codec hot paths at -O0,
        # silently skewing the whole trajectory low.
        if line.startswith("CMAKE_BUILD_TYPE:"):
            build_type = line.split("=", 1)[1].strip()
            if build_type not in ("Release", "RelWithDebInfo"):
                sys.exit(
                    f"refusing to benchmark {build_dir}: "
                    f"CMAKE_BUILD_TYPE={build_type or '<empty>'} (benchmarks "
                    f"must come from a Release or RelWithDebInfo tree; "
                    f"reconfigure with -DCMAKE_BUILD_TYPE=RelWithDebInfo or "
                    f"point --build-dir at one)")


def parse_result_lines(stdout: str):
    """Extracts RESULT lines into dicts, coercing numeric values."""
    results = []
    for line in stdout.splitlines():
        if not line.startswith("RESULT "):
            continue
        entry = {}
        for token in line[len("RESULT "):].split():
            if "=" not in token:
                continue
            key, value = token.split("=", 1)
            try:
                entry[key] = int(value)
            except ValueError:
                try:
                    entry[key] = float(value)
                except ValueError:
                    entry[key] = value
        if entry:
            results.append(entry)
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_pr4.json")
    parser.add_argument("--build-dir", default="build-rel")
    parser.add_argument("--benches",
                        default=",".join(DEFAULT_BENCHES),
                        help="comma-separated bench binaries to run")
    parser.add_argument("--skip-build", action="store_true",
                        help="assume the binaries are already built")
    args = parser.parse_args()

    repo = Path(__file__).resolve().parent.parent
    build_dir = repo / args.build_dir
    benches = [b for b in args.benches.split(",") if b]

    reject_instrumented_build(build_dir)
    if not args.skip_build:
        subprocess.run(
            ["cmake", "-B", str(build_dir), "-S", str(repo),
             "-DCMAKE_BUILD_TYPE=RelWithDebInfo"],
            check=True)
        subprocess.run(
            ["cmake", "--build", str(build_dir), "--target", *benches,
             "-j", "2"],
            check=True)

    record = {
        "schema": 1,
        "generated_unix": int(time.time()),
        "host": {
            "machine": platform.machine(),
            "system": platform.system(),
            "processor": platform.processor(),
        },
        "benches": {},
    }

    failures = []
    for bench in benches:
        binary = build_dir / bench
        if not binary.exists():
            failures.append(f"{bench}: binary not found at {binary}")
            continue
        env = dict(BENCH_ENV.get(bench, {}))
        print(f"== running {bench} {env or ''}", flush=True)
        proc = subprocess.run(
            [str(binary)], capture_output=True, text=True,
            env={**__import__('os').environ, **env})
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        record["benches"][bench] = {
            "exit_code": proc.returncode,
            "results": parse_result_lines(proc.stdout),
            "raw": proc.stdout,
        }
        if proc.returncode != 0:
            failures.append(f"{bench}: exit code {proc.returncode}")

    out_path = Path(args.out)
    out_path.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {out_path} ({len(record['benches'])} benches)")

    if failures:
        print("FAILURES:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
