// mdos_cli — command-line client for a running mdos_store.
//
//   mdos_cli -s /tmp/mdos.sock put <name> <data...>
//   mdos_cli -s /tmp/mdos.sock get <name>
//   mdos_cli -s /tmp/mdos.sock contains <name>
//   mdos_cli -s /tmp/mdos.sock delete <name>
//   mdos_cli -s /tmp/mdos.sock list
//   mdos_cli -s /tmp/mdos.sock stats
//   mdos_cli -s /tmp/mdos.sock health
//   mdos_cli -s /tmp/mdos.sock watch [count]
//
// Object names are hashed to deterministic 20-byte ids with
// ObjectId::FromName, so `put foo ...` and `get foo` agree across
// invocations and processes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "plasma/client.h"

using namespace mdos;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdPut(plasma::PlasmaClient& client, int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "put needs a name\n");
    return 2;
  }
  std::string name = argv[0];
  std::string data;
  for (int i = 1; i < argc; ++i) {
    if (i > 1) data += ' ';
    data += argv[i];
  }
  Status status = client.CreateAndSeal(ObjectId::FromName(name), data);
  if (!status.ok()) return Fail(status);
  std::printf("sealed %s (%zu bytes) as %s\n", name.c_str(), data.size(),
              ObjectId::FromName(name).Hex().c_str());
  return 0;
}

int CmdGet(plasma::PlasmaClient& client, int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "get needs a name\n");
    return 2;
  }
  auto buffer = client.Get(ObjectId::FromName(argv[0]),
                           /*timeout_ms=*/2000);
  if (!buffer.ok()) return Fail(buffer.status());
  auto data = buffer->CopyData();
  if (!data.ok()) return Fail(data.status());
  std::fwrite(data->data(), 1, data->size(), stdout);
  std::printf("\n");
  (void)client.Release(ObjectId::FromName(argv[0]));
  return 0;
}

int CmdContains(plasma::PlasmaClient& client, int argc, char** argv) {
  if (argc < 1) return 2;
  auto contains = client.Contains(ObjectId::FromName(argv[0]));
  if (!contains.ok()) return Fail(contains.status());
  std::printf("%s\n", *contains ? "yes" : "no");
  return *contains ? 0 : 1;
}

int CmdDelete(plasma::PlasmaClient& client, int argc, char** argv) {
  if (argc < 1) return 2;
  Status status = client.Delete(ObjectId::FromName(argv[0]));
  if (!status.ok()) return Fail(status);
  std::printf("deleted\n");
  return 0;
}

int CmdList(plasma::PlasmaClient& client) {
  auto list = client.List();
  if (!list.ok()) return Fail(list.status());
  std::printf("%-42s %-10s %-8s %-6s\n", "id", "bytes", "sealed", "refs");
  for (const auto& info : *list) {
    std::printf("%-42s %-10llu %-8s %-6u\n", info.id.Hex().c_str(),
                static_cast<unsigned long long>(info.data_size +
                                                info.metadata_size),
                info.spilled ? "disk" : (info.sealed ? "yes" : "no"),
                info.ref_count);
  }
  std::printf("(%zu objects)\n", list->size());
  return 0;
}

int CmdStats(plasma::PlasmaClient& client) {
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("capacity:            %llu\n",
              static_cast<unsigned long long>(stats->capacity));
  std::printf("bytes_in_use:        %llu\n",
              static_cast<unsigned long long>(stats->bytes_in_use));
  std::printf("objects_total:       %llu\n",
              static_cast<unsigned long long>(stats->objects_total));
  std::printf("objects_sealed:      %llu\n",
              static_cast<unsigned long long>(stats->objects_sealed));
  std::printf("evictions:           %llu\n",
              static_cast<unsigned long long>(stats->evictions));
  std::printf("remote_lookups:      %llu\n",
              static_cast<unsigned long long>(stats->remote_lookups));
  std::printf("remote_lookup_hits:  %llu\n",
              static_cast<unsigned long long>(stats->remote_lookup_hits));
  std::printf("spilled_objects:     %llu\n",
              static_cast<unsigned long long>(stats->spilled_objects));
  std::printf("spilled_bytes:       %llu\n",
              static_cast<unsigned long long>(stats->spilled_bytes));
  std::printf("spills:              %llu\n",
              static_cast<unsigned long long>(stats->spills));
  std::printf("spill_restores:      %llu\n",
              static_cast<unsigned long long>(stats->spill_restores));
  std::printf("frames_tx:           %llu\n",
              static_cast<unsigned long long>(stats->frames_tx));
  std::printf("frames_coalesced:    %llu\n",
              static_cast<unsigned long long>(stats->frames_coalesced));
  std::printf("writev_calls:        %llu\n",
              static_cast<unsigned long long>(stats->writev_calls));
  std::printf("bytes_tx:            %llu\n",
              static_cast<unsigned long long>(stats->bytes_tx));
  std::printf("egress_blocked:      %llu\n",
              static_cast<unsigned long long>(stats->egress_blocked_events));
  // Peer health (cluster failure handling); all zero without peers.
  std::printf("peers:               %llu (%llu healthy, %llu suspect, "
              "%llu dead)\n",
              static_cast<unsigned long long>(stats->peers_total),
              static_cast<unsigned long long>(stats->peers_healthy),
              static_cast<unsigned long long>(stats->peers_suspect),
              static_cast<unsigned long long>(stats->peers_dead));
  std::printf("peer_failed_rpcs:    %llu\n",
              static_cast<unsigned long long>(stats->peer_failed_rpcs));
  std::printf("peer_reconnects:     %llu\n",
              static_cast<unsigned long long>(stats->peer_reconnects));
  std::printf("peer_heartbeats:     %llu\n",
              static_cast<unsigned long long>(stats->peer_heartbeats));
  std::printf("peer_queued_notices: %llu\n",
              static_cast<unsigned long long>(stats->peer_queued_notices));
  // Mapped data plane (zero-RPC remote reads); all zero when
  // mapped_remote_reads is off.
  std::printf("mapped_reads:        %llu\n",
              static_cast<unsigned long long>(stats->mapped_reads));
  std::printf("mapped_bytes:        %llu\n",
              static_cast<unsigned long long>(stats->mapped_bytes));
  std::printf("generation_retries:  %llu\n",
              static_cast<unsigned long long>(stats->generation_retries));
  std::printf("mapped_fallbacks:    %llu\n",
              static_cast<unsigned long long>(stats->mapped_fallbacks));
  // k-way replication and re-heal progress; all zero when
  // replication_factor is 1 and no object opted in.
  std::printf("replicas_total:      %llu\n",
              static_cast<unsigned long long>(stats->replicas_total));
  std::printf("under_replicated:    %llu\n",
              static_cast<unsigned long long>(stats->under_replicated));
  std::printf("reheal_copies:       %llu\n",
              static_cast<unsigned long long>(stats->reheal_copies));
  std::printf("reheal_bytes:        %llu\n",
              static_cast<unsigned long long>(stats->reheal_bytes));

  // Per-peer health table (kPeerStats); skipped when the store has no
  // peers. Non-fatal like the shard table below.
  auto peers = client.PeerStats();
  if (peers.ok() && !peers->empty()) {
    std::printf("\n%-8s %-9s %-8s %-9s %-11s %-11s %-8s %-9s %-12s\n",
                "peer", "state", "streak", "failed", "reconnects",
                "heartbeats", "queued", "dropped", "ms_since_ok");
    static const char* kStateNames[] = {"healthy", "suspect", "dead"};
    for (const auto& p : *peers) {
      const char* state =
          p.state < 3 ? kStateNames[p.state] : "?";
      std::printf("%-8u %-9s %-8llu %-9llu %-11llu %-11llu %-8llu %-9llu "
                  "%-12lld\n",
                  p.node_id, state,
                  static_cast<unsigned long long>(p.failure_streak),
                  static_cast<unsigned long long>(p.failed_rpcs),
                  static_cast<unsigned long long>(p.reconnects),
                  static_cast<unsigned long long>(p.heartbeats),
                  static_cast<unsigned long long>(p.queued_notices),
                  static_cast<unsigned long long>(p.dropped_notices),
                  static_cast<long long>(p.ms_since_ok));
    }
  }

  // Per-shard breakdown (GetStoreStats): exposes load balance across the
  // store's event-loop shards. Non-fatal: a store that predates the
  // message drops the connection on the unknown type, but the aggregate
  // above already printed.
  auto shards = client.ShardStats();
  if (!shards.ok()) {
    std::fprintf(stderr,
                 "(per-shard stats unavailable: %s)\n",
                 shards.status().ToString().c_str());
    return 0;
  }
  std::printf("\n%-6s %-8s %-9s %-9s %-12s %-12s %-10s %-9s %-9s %-12s %-9s "
              "%-10s %-10s %-9s %-12s %-8s %-10s %-12s %-9s %-9s %-9s\n",
              "shard", "clients", "objects", "sealed", "bytes", "arena",
              "evicted", "inflight", "spilled", "spill_bytes", "restores",
              "frames_tx", "coalesced", "writev", "bytes_tx", "blocked",
              "mapped", "map_bytes", "fallbacks", "replicas", "under_k");
  for (const auto& s : *shards) {
    std::printf(
        "%-6u %-8llu %-9llu %-9llu %-12llu %-12llu %-10llu %-9llu %-9llu "
        "%-12llu %-9llu %-10llu %-10llu %-9llu %-12llu %-8llu %-10llu "
        "%-12llu %-9llu %-9llu %-9llu\n",
        s.shard, static_cast<unsigned long long>(s.clients),
        static_cast<unsigned long long>(s.objects_total),
        static_cast<unsigned long long>(s.objects_sealed),
        static_cast<unsigned long long>(s.bytes_in_use),
        static_cast<unsigned long long>(s.arena_capacity),
        static_cast<unsigned long long>(s.evictions),
        static_cast<unsigned long long>(s.inflight_gets),
        static_cast<unsigned long long>(s.spilled_objects),
        static_cast<unsigned long long>(s.spilled_bytes),
        static_cast<unsigned long long>(s.spill_restores),
        static_cast<unsigned long long>(s.frames_tx),
        static_cast<unsigned long long>(s.frames_coalesced),
        static_cast<unsigned long long>(s.writev_calls),
        static_cast<unsigned long long>(s.bytes_tx),
        static_cast<unsigned long long>(s.egress_blocked_events),
        static_cast<unsigned long long>(s.mapped_reads),
        static_cast<unsigned long long>(s.mapped_bytes),
        static_cast<unsigned long long>(s.mapped_fallbacks),
        static_cast<unsigned long long>(s.replicas_total),
        static_cast<unsigned long long>(s.under_replicated));
  }
  std::printf("(%zu shards)\n", shards->size());
  return 0;
}

// Gray-failure triage view (see docs/operations.md): the deadline and
// hedging counters say whether the store is shedding expired work and
// routing around a slow replica, the per-peer table pairs each peer's
// health state with its smoothed call latency (the signal the hedging
// delay and replica ranking derive from), and the re-heal counters show
// whether the replication repair queue is keeping up or saturating.
int CmdHealth(plasma::PlasmaClient& client) {
  auto stats = client.Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("peers:               %llu (%llu healthy, %llu suspect, "
              "%llu dead)\n",
              static_cast<unsigned long long>(stats->peers_total),
              static_cast<unsigned long long>(stats->peers_healthy),
              static_cast<unsigned long long>(stats->peers_suspect),
              static_cast<unsigned long long>(stats->peers_dead));
  std::printf("deadline_exceeded:   %llu\n",
              static_cast<unsigned long long>(stats->deadline_exceeded));
  std::printf("hedged_reads:        %llu\n",
              static_cast<unsigned long long>(stats->hedged_reads));
  std::printf("hedge_wins:          %llu\n",
              static_cast<unsigned long long>(stats->hedge_wins));
  std::printf("hedge_budget_denied: %llu\n",
              static_cast<unsigned long long>(stats->hedge_budget_denied));
  std::printf("under_replicated:    %llu\n",
              static_cast<unsigned long long>(stats->under_replicated));
  std::printf("reheal_queue_depth:  %llu\n",
              static_cast<unsigned long long>(stats->reheal_queue_depth));
  std::printf("reheal_deduped:      %llu\n",
              static_cast<unsigned long long>(stats->reheal_deduped));
  std::printf("reheal_dropped:      %llu\n",
              static_cast<unsigned long long>(stats->reheal_dropped));

  auto peers = client.PeerStats();
  if (!peers.ok()) return Fail(peers.status());
  if (peers->empty()) {
    std::printf("(no peers)\n");
    return 0;
  }
  std::printf("\n%-8s %-9s %-12s %-8s %-9s %-11s %-12s\n", "peer", "state",
              "ewma_lat_us", "streak", "failed", "reconnects",
              "ms_since_ok");
  static const char* kStateNames[] = {"healthy", "suspect", "dead"};
  for (const auto& p : *peers) {
    const char* state = p.state < 3 ? kStateNames[p.state] : "?";
    char latency[24];
    if (p.ewma_latency_us < 0) {
      std::snprintf(latency, sizeof(latency), "-");
    } else {
      std::snprintf(latency, sizeof(latency), "%lld",
                    static_cast<long long>(p.ewma_latency_us));
    }
    std::printf("%-8u %-9s %-12s %-8llu %-9llu %-11llu %-12lld\n",
                p.node_id, state, latency,
                static_cast<unsigned long long>(p.failure_streak),
                static_cast<unsigned long long>(p.failed_rpcs),
                static_cast<unsigned long long>(p.reconnects),
                static_cast<long long>(p.ms_since_ok));
  }
  return 0;
}

int CmdWatch(const std::string& socket_path, int argc, char** argv) {
  int count = argc >= 1 ? std::atoi(argv[0]) : 10;
  auto listener =
      plasma::NotificationListener::Connect(socket_path, "mdos_cli");
  if (!listener.ok()) return Fail(listener.status());
  std::printf("watching %d notifications...\n", count);
  for (int i = 0; i < count; ++i) {
    auto notice = listener->Next(/*timeout_ms=*/0);
    if (!notice.ok()) return Fail(notice.status());
    std::printf("%s %s (%llu bytes)\n",
                notice->deleted ? "DELETED" : "SEALED ",
                notice->id.Hex().c_str(),
                static_cast<unsigned long long>(notice->data_size));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int arg = 1;
  if (arg + 1 < argc && std::strcmp(argv[arg], "-s") == 0) {
    socket_path = argv[arg + 1];
    arg += 2;
  }
  if (socket_path.empty() || arg >= argc) {
    std::fprintf(stderr,
                 "usage: %s -s <socket> "
                 "put|get|contains|delete|list|stats|health|watch "
                 "[args...]\n",
                 argv[0]);
    return 2;
  }
  std::string command = argv[arg++];

  if (command == "watch") {
    return CmdWatch(socket_path, argc - arg, argv + arg);
  }

  auto client = plasma::PlasmaClient::Connect(socket_path);
  if (!client.ok()) return Fail(client.status());
  if (command == "put") return CmdPut(**client, argc - arg, argv + arg);
  if (command == "get") return CmdGet(**client, argc - arg, argv + arg);
  if (command == "contains") {
    return CmdContains(**client, argc - arg, argv + arg);
  }
  if (command == "delete") {
    return CmdDelete(**client, argc - arg, argv + arg);
  }
  if (command == "list") return CmdList(**client);
  if (command == "stats") return CmdStats(**client);
  if (command == "health") return CmdHealth(**client);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}
